"""Tests for sequential design synthesis and signoff."""

import pytest

from repro.charlib import default_library
from repro.core.sequential import (
    SequentialDesign,
    make_accumulator,
    make_counter,
    pick_flop,
    run_sequential,
)
from repro.synth import AIG


@pytest.fixture(scope="module")
def library():
    return default_library(10.0)


class TestDesignValidation:
    def test_counter_shape(self):
        design = make_counter(4)
        assert design.num_registers == 4
        assert design.num_primary_inputs == 1  # enable
        assert design.num_primary_outputs == 1  # carry

    def test_register_bounds_checked(self):
        g = AIG()
        g.add_pi()
        g.add_po(2)
        with pytest.raises(ValueError):
            SequentialDesign("bad", g, num_registers=2)
        with pytest.raises(ValueError):
            SequentialDesign("bad", g, num_registers=-1)

    def test_counter_semantics(self):
        # Evaluate the next-state logic combinationally.
        design = make_counter(3)
        core = design.core
        for state in range(8):
            for enable in (False, True):
                inputs = [enable] + [bool((state >> i) & 1) for i in range(3)]
                outs = core.evaluate(inputs)
                carry = outs[0]
                next_state = sum(1 << i for i in range(3) if outs[1 + i])
                expected = (state + 1) % 8 if enable else state
                assert next_state == expected, (state, enable)
                assert carry == (state == 7)

    def test_accumulator_semantics(self):
        design = make_accumulator(4)
        core = design.core
        for acc in (0, 5, 15):
            for data in (0, 3, 12):
                inputs = (
                    [False]
                    + [bool((data >> i) & 1) for i in range(4)]
                    + [bool((acc >> i) & 1) for i in range(4)]
                )
                outs = core.evaluate(inputs)
                next_acc = sum(1 << i for i in range(4) if outs[1 + i])
                assert next_acc == (acc + data) % 16
        # Clear forces zero.
        inputs = [True] + [True] * 4 + [True] * 4
        outs = core.evaluate(inputs)
        assert not any(outs[1:])


class TestPickFlop:
    def test_default_flop(self, library):
        flop = pick_flop(library)
        assert flop.name == "DFFx1"
        assert flop.is_sequential

    def test_drive_selection(self, library):
        assert pick_flop(library, drive=2).name == "DFFx2"

    def test_no_flop_library_rejected(self):
        from repro.charlib import characterize_library
        from repro.pdk import cryo5_technology
        from repro.pdk.catalog import make_inv

        lib = characterize_library(cryo5_technology(), 10.0, cells=[make_inv(1)])
        with pytest.raises(ValueError):
            pick_flop(lib)


class TestSequentialSignoff:
    @pytest.fixture(scope="class")
    def result(self, library):
        return run_sequential(make_counter(6), library, vectors=128)

    def test_components_positive(self, result):
        assert result.clk_to_q > 0.0
        assert result.setup_time > 0.0
        assert result.comb_delay > 0.0

    def test_min_period_is_sum(self, result):
        assert result.min_clock_period == pytest.approx(
            result.clk_to_q + result.comb_delay + result.setup_time
        )
        assert result.fmax == pytest.approx(1.0 / result.min_clock_period)

    def test_fmax_in_plausible_band(self, result):
        # A 6-bit counter in a ps-class library clocks in the GHz range.
        assert 1e8 < result.fmax < 1e12

    def test_register_power_included(self, result):
        assert result.register_power > 0.0
        assert result.total_power == pytest.approx(
            result.register_power + result.core_power
        )

    def test_wider_counter_slower_and_hungrier(self, library):
        small = run_sequential(make_counter(4), library, vectors=128)
        large = run_sequential(make_counter(12), library, vectors=128)
        assert large.min_clock_period > small.min_clock_period
        assert large.register_power > small.register_power

    def test_scenarios_all_run(self, library):
        for scenario in ("baseline", "p_a_d", "p_d_a"):
            result = run_sequential(
                make_accumulator(4), library, scenario=scenario, vectors=128
            )
            assert result.scenario == scenario
            assert result.fmax > 0.0
