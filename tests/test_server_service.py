"""Characterization service: admission control, coalescing, retries.

The service contract (ISSUE 8): every admitted job reaches exactly one
terminal state, duplicate submissions coalesce onto one computation,
shedding is typed and counted, worker crashes retry behind a circuit
breaker, deadlines expire jobs instead of wedging workers, and drain
leaves a journal ``--resume`` can complete.
"""

import json
import time

import pytest

from repro.resilience import (
    FaultPlan,
    FaultSpec,
    QueueSaturatedError,
    QuotaExceededError,
    RunJournal,
    ServiceDrainingError,
    injecting,
)
from repro.server import CharacterizationService, JobSpec, unfinished_specs

# Exact admission/shed/retry counter bookkeeping: ambient fault plans
# that include the server sites would legitimately perturb it.
pytestmark = pytest.mark.no_chaos


def probe(i=0, tenant="default", **kw):
    return JobSpec(kind="probe", params={"echo": i}, tenant=tenant, **kw)


def _wait_running(job, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if job.state == "running":
            return
        time.sleep(0.01)
    raise AssertionError(f"{job!r} never started running")


@pytest.fixture
def service():
    svc = CharacterizationService(capacity=16, workers=2)
    svc.start()
    yield svc
    svc.shutdown(timeout=10.0)


class TestSubmission:
    def test_job_runs_to_done(self, service):
        job = service.submit(probe(1))
        assert job.wait(timeout=10.0)
        assert job.state == "done"
        assert job.result == {"kind": "probe", "echo": 1}

    def test_failure_is_terminal_not_lost(self, service):
        job = service.submit(JobSpec(kind="probe", params={"fail": "boom"}))
        assert job.wait(timeout=10.0)
        assert (job.state, job.error) == ("failed", "boom")

    def test_duplicates_coalesce_onto_one_primary(self, service):
        jobs = [service.submit(probe(7, tenant=f"t{i}")) for i in range(6)]
        for job in jobs:
            assert job.wait(timeout=10.0)
            assert job.result == {"kind": "probe", "echo": 7}
        followers = [j for j in jobs if j.coalesced_into is not None]
        assert len(followers) == 5
        assert {j.coalesced_into for j in followers} == {jobs[0].id}
        assert service.metrics()["counters"]["server.coalesced"] == 5

    def test_completed_key_is_served_from_cache(self, service):
        first = service.submit(probe(9))
        assert first.wait(timeout=10.0)
        again = service.submit(probe(9))
        # Cached fast-path: terminal at submit, no queue round-trip.
        assert again.state == "done"
        assert again.result == first.result
        assert service.metrics()["counters"]["server.cached"] == 1


class TestAdmissionControl:
    def test_queue_full_sheds_with_retry_after(self):
        service = CharacterizationService(capacity=2, workers=1)
        try:
            blocker = service.submit(JobSpec(kind="probe",
                                             params={"sleep_s": 1.0}))
            service.start()
            _wait_running(blocker)  # off the queue, onto the worker
            for i in range(2):
                service.submit(probe(i))
            with pytest.raises(QueueSaturatedError) as exc_info:
                service.submit(probe(99))
            assert exc_info.value.retry_after_s > 0
            counters = service.metrics()["counters"]
            assert counters["server.shed.queue_full"] == 1
        finally:
            service.shutdown(timeout=10.0)

    def test_tenant_quota_sheds_only_that_tenant(self):
        service = CharacterizationService(
            capacity=16, workers=1, quotas={"greedy": 2}
        )
        try:
            service.submit(JobSpec(kind="probe", params={"sleep_s": 1.0},
                                   tenant="greedy"))
            service.submit(probe(1, tenant="greedy"))
            with pytest.raises(QuotaExceededError):
                service.submit(probe(2, tenant="greedy"))
            service.submit(probe(3, tenant="polite"))  # unaffected
            assert service.metrics()["counters"]["server.shed.quota"] == 1
        finally:
            service.shutdown(timeout=10.0)

    def test_draining_rejects_new_work(self, service):
        job = service.submit(probe(1))
        service.begin_drain()
        with pytest.raises(ServiceDrainingError):
            service.submit(probe(2))
        assert service.drain(timeout=10.0)
        assert job.state == "done"
        assert service.metrics()["counters"]["server.shed.draining"] == 1


class TestFaultsAndBreaker:
    def test_worker_crash_retries_to_success(self):
        plan = FaultPlan([FaultSpec("server.worker_crash", first_n=2)], seed=0)
        service = CharacterizationService(capacity=8, workers=1,
                                          max_attempts=3)
        try:
            with injecting(plan):
                service.start()
                job = service.submit(probe(1))
                assert job.wait(timeout=10.0)
            assert (job.state, job.attempts) == ("done", 3)
            counters = service.metrics()["counters"]
            assert counters["server.worker_crash"] == 2
            assert counters["server.retried"] == 2
        finally:
            service.shutdown(timeout=0)

    def test_attempts_exhausted_fails_the_job(self):
        plan = FaultPlan([FaultSpec("server.worker_crash", first_n=10)], seed=0)
        service = CharacterizationService(capacity=8, workers=1,
                                          max_attempts=2,
                                          breaker_threshold=50)
        try:
            with injecting(plan):
                service.start()
                job = service.submit(probe(1))
                assert job.wait(timeout=10.0)
            assert job.state == "failed"
            assert job.error_kind == "WorkerCrashError"
        finally:
            service.shutdown(timeout=0)

    def test_sustained_crashes_trip_the_breaker(self):
        plan = FaultPlan([FaultSpec("server.worker_crash", first_n=99)], seed=0)
        service = CharacterizationService(
            capacity=8, workers=1, max_attempts=2,
            breaker_threshold=2, breaker_cooldown_s=0.2,
        )
        try:
            with injecting(plan):
                service.start()
                # Job 1's two crashes trip the breaker; job 2 then only
                # dispatches as half-open probes after each cooldown —
                # buffered while OPEN, never shed.
                jobs = [service.submit(probe(i)) for i in range(2)]
                for job in jobs:
                    assert job.wait(timeout=30.0)
                    assert job.state == "failed"
            breaker = service.health()["breaker"]
            assert breaker["state"] == "open"
            assert breaker["consecutive_failures"] >= 2
            # Buffered behind the breaker, never shed.
            assert "server.shed.queue_full" not in service.metrics()["counters"]
        finally:
            service.shutdown(timeout=0)

    def test_expired_deadline_fails_without_running(self):
        service = CharacterizationService(capacity=8, workers=1)
        try:
            blocker = service.submit(JobSpec(kind="probe",
                                             params={"sleep_s": 0.4}))
            doomed = service.submit(
                JobSpec(kind="probe", params={"echo": 1},
                        deadline_s=0.01)
            )
            service.start()
            assert blocker.wait(timeout=10.0)
            assert doomed.wait(timeout=10.0)
            assert doomed.state == "failed"
            assert doomed.started_at is None  # never dispatched
            counters = service.metrics()["counters"]
            assert counters["server.deadline_expired"] == 1
        finally:
            service.shutdown(timeout=0)


class TestJournalAndResume:
    def test_drain_leaves_no_unfinished_records(self, tmp_path):
        journal = RunJournal.create(tmp_path / "serve.jnl",
                                    {"command": "serve"})
        service = CharacterizationService(capacity=8, workers=2,
                                          journal=journal,
                                          results_dir=tmp_path / "results")
        service.start()
        for i in range(4):
            service.submit(probe(i))
        assert service.shutdown(timeout=10.0)
        journal.close()
        assert unfinished_specs(journal.records) == []

    def test_unfinished_specs_finds_interrupted_jobs(self, tmp_path):
        with RunJournal.create(tmp_path / "j", {"command": "serve"}) as journal:
            a, b = probe(1), probe(2)
            journal.record("job_submit", key=a.job_key(), spec=a.to_dict())
            journal.record("job_submit", key=b.job_key(), spec=b.to_dict())
            journal.record("job_done", key=a.job_key(), status="done")
        pending = unfinished_specs(RunJournal.resume(tmp_path / "j").records)
        assert pending == [b]

    def test_resubmitted_key_after_done_is_pending_again(self, tmp_path):
        # Latest-record-wins: a key finished in phase 1 but resubmitted
        # (e.g. after a result eviction) in phase 2 is pending again.
        spec = probe(1)
        with RunJournal.create(tmp_path / "j", {"command": "serve"}) as journal:
            journal.record("job_submit", key=spec.job_key(),
                           spec=spec.to_dict())
            journal.record("job_done", key=spec.job_key(), status="done")
            journal.record("job_submit", key=spec.job_key(),
                           spec=spec.to_dict())
        pending = unfinished_specs(RunJournal.resume(tmp_path / "j").records)
        assert pending == [spec]

    def test_persisted_results_reload_as_cached(self, tmp_path):
        journal = RunJournal.create(tmp_path / "serve.jnl",
                                    {"command": "serve"})
        service = CharacterizationService(capacity=8, workers=1,
                                          journal=journal,
                                          results_dir=tmp_path / "results")
        service.start()
        first = service.submit(probe(5))
        assert first.wait(timeout=10.0)
        service.shutdown(timeout=10.0)
        journal.close()
        result_files = list((tmp_path / "results").glob("*.json"))
        assert len(result_files) == 1
        # A fresh service on the same results_dir answers from disk.
        reborn = CharacterizationService(capacity=8, workers=1,
                                         results_dir=tmp_path / "results")
        try:
            again = reborn.submit(probe(5))
            assert again.state == "done"
            assert again.result == first.result
            counters = reborn.metrics()["counters"]
            assert counters["server.results_loaded"] == 1
            assert counters["server.cached"] == 1
        finally:
            reborn.shutdown(timeout=0)

    def test_result_files_are_canonical_json(self, tmp_path):
        service = CharacterizationService(capacity=8, workers=1,
                                          results_dir=tmp_path / "results")
        service.start()
        job = service.submit(probe(3))
        assert job.wait(timeout=10.0)
        service.shutdown(timeout=10.0)
        path, = (tmp_path / "results").glob("*.json")
        data = path.read_bytes()
        expected = (json.dumps(job.result, indent=2, sort_keys=True)
                    + "\n").encode()
        assert data == expected
