"""Tests for sequential-cell characterization (clk->q, setup, hold)."""

import numpy as np
import pytest

from repro.charlib import characterize_library, parse_liberty, write_liberty
from repro.pdk import cryo5_technology
from repro.pdk.catalog import make_dff, make_latch

TECH = cryo5_technology()


@pytest.fixture(scope="module")
def library():
    return characterize_library(
        TECH, 10.0, cells=[make_dff(1), make_dff(2), make_dff(1, reset=True), make_latch(1)]
    )


class TestClockToQ:
    def test_arc_exists_with_rising_edge_type(self, library):
        dff = library["DFFx1"]
        arcs = [a for a in dff.arcs if a.timing_type == "rising_edge"]
        assert len(arcs) == 1
        assert arcs[0].related_pin == "CLK"

    def test_stronger_flop_faster(self, library):
        d1 = library["DFFx1"].typical_delay()
        d2 = library["DFFx2"].typical_delay()
        assert d2 < d1

    def test_clk_to_q_load_dependent(self, library):
        arc = library["DFFx1"].arcs[0]
        assert arc.cell_rise.lookup(8e-12, 2e-14) > arc.cell_rise.lookup(8e-12, 1e-15)


class TestConstraints:
    def test_setup_and_hold_present(self, library):
        dff = library["DFFx1"]
        types = {(c.constrained_pin, c.timing_type) for c in dff.constraints}
        assert ("D", "setup_rising") in types
        assert ("D", "hold_rising") in types

    def test_dffr_constrains_reset_pin_too(self):
        lib = characterize_library(TECH, 10.0, cells=[make_dff(1, reset=True)])
        dffr = lib["DFFRx1"]
        pins = {c.constrained_pin for c in dffr.constraints}
        assert pins == {"D", "RN"}

    def test_setup_positive_and_slew_dependent(self, library):
        setup = library["DFFx1"].constraint("D", "setup_rising")
        fast = setup.worst(2e-12, 8e-12)
        slow = setup.worst(1.2e-10, 8e-12)
        assert fast > 0.0
        assert slow > fast  # slower data needs more setup

    def test_hold_nonnegative(self, library):
        hold = library["DFFx1"].constraint("D", "hold_rising")
        assert hold.rise_constraint.min_value() >= 0.0

    def test_setup_larger_than_hold(self, library):
        dff = library["DFFx1"]
        setup = dff.constraint("D", "setup_rising").worst(8e-12, 8e-12)
        hold = dff.constraint("D", "hold_rising").worst(8e-12, 8e-12)
        assert setup > hold

    def test_unknown_constraint_rejected(self, library):
        with pytest.raises(KeyError):
            library["DFFx1"].constraint("D", "recovery_rising")


class TestLibertyRoundTrip:
    def test_constraints_survive(self, library):
        parsed = parse_liberty(write_liberty(library))
        for name, cell in library.cells.items():
            other = parsed[name]
            assert len(other.constraints) == len(cell.constraints)
            for mine, theirs in zip(cell.constraints, other.constraints):
                assert theirs.timing_type == mine.timing_type
                assert theirs.constrained_pin == mine.constrained_pin
                assert np.allclose(
                    theirs.rise_constraint.values,
                    mine.rise_constraint.values,
                    rtol=1e-4,
                )

    def test_written_file_declares_constraint_groups(self, library):
        text = write_liberty(library)
        assert "timing_type : setup_rising;" in text
        assert "timing_type : hold_rising;" in text
        assert "rise_constraint" in text


class TestCryoSequentialTrends:
    def test_setup_time_stable_across_temperature(self):
        cells = [make_dff(1)]
        warm = characterize_library(TECH, 300.0, cells=cells)["DFFx1"]
        cold = characterize_library(TECH, 10.0, cells=cells)["DFFx1"]
        s_warm = warm.constraint("D", "setup_rising").worst(8e-12, 8e-12)
        s_cold = cold.constraint("D", "setup_rising").worst(8e-12, 8e-12)
        assert s_cold == pytest.approx(s_warm, rel=0.25)

    def test_flop_leakage_collapses_at_cryo(self):
        cells = [make_dff(1)]
        warm = characterize_library(TECH, 300.0, cells=cells)["DFFx1"]
        cold = characterize_library(TECH, 10.0, cells=cells)["DFFx1"]
        assert cold.leakage_average < 1e-4 * warm.leakage_average
