"""End-to-end integration: the full flow over the EPFL suite (small).

For every circuit in the suite (small preset): run the complete
cryogenic-aware pipeline and verify the mapped netlist is functionally
equivalent to the generated circuit — random simulation for all
circuits, full SAT equivalence for the control-sized ones (multiplier-
class miters are SAT-hard by nature and are covered by dense random
simulation instead).
"""

import random

import pytest

from repro.benchgen import EPFL_SUITE, build_circuit
from repro.charlib import default_library
from repro.core import CryoSynthesisFlow
from repro.sat import check_equivalence

#: Circuits small enough for full SAT equivalence in a test run.
SAT_PROVABLE = {
    "ctrl", "dec", "int2float", "priority", "router", "i2c", "cavlc",
    "arbiter", "bar", "max", "voter", "adder", "log2",
}

ALL_CIRCUITS = sorted(EPFL_SUITE)


@pytest.fixture(scope="module")
def library():
    return default_library(10.0)


@pytest.mark.parametrize("name", ALL_CIRCUITS)
def test_full_flow_preserves_function(name, library):
    aig = build_circuit(name, "small")
    flow = CryoSynthesisFlow(library, "p_d_a")
    result = flow.run(aig)
    assert result.num_gates > 0
    assert result.critical_delay > 0.0

    mapped_aig = result.netlist.to_aig(library)
    if name in SAT_PROVABLE:
        outcome = check_equivalence(aig, mapped_aig)
        assert outcome.equivalent, f"{name}: {outcome}"
    else:
        # Dense random simulation (4096 patterns).
        rng = random.Random(17)
        words = [rng.getrandbits(4096) for _ in aig.pis]
        assert aig.simulate(words, 4096) == mapped_aig.simulate(words, 4096), name


def test_suite_wide_statistics(library):
    """The mapped suite should show sane aggregate numbers."""
    total_gates = 0
    for name in ("ctrl", "dec", "i2c", "int2float"):
        aig = build_circuit(name, "small")
        result = CryoSynthesisFlow(library, "baseline").run(aig)
        # Mapping onto multi-input cells compresses the AND count.
        assert result.num_gates <= aig.num_ands
        total_gates += result.num_gates
    assert total_gates > 50
