"""HTTP front end: status-code mapping for the service's decisions.

Runs a real ``ThreadingHTTPServer`` on an ephemeral port; the policy
itself is tested in ``test_server_service.py`` — here we pin the wire
contract (202/400/404/409/429/503 + ``Retry-After``).
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.server import CharacterizationService
from repro.server.http import make_server

# Pins exact status codes for admission decisions; ambient server-site
# fault plans would legitimately flip 202s into 429s.
pytestmark = pytest.mark.no_chaos


@pytest.fixture
def served():
    service = CharacterizationService(capacity=4, workers=2)
    service.start()
    httpd = make_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield service, f"http://127.0.0.1:{httpd.server_address[1]}"
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.shutdown(timeout=10.0)


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode() if payload is not None else b"",
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


class TestRoutes:
    def test_submit_poll_result(self, served):
        service, base = served
        code, job, _ = _post(f"{base}/jobs",
                             {"kind": "probe", "params": {"echo": "hi"}})
        assert code == 202
        assert service.get(job["id"]).wait(timeout=10.0)
        code, status = _get(f"{base}/jobs/{job['id']}")
        assert (code, status["state"]) == (200, "done")
        code, payload = _get(f"{base}/jobs/{job['id']}/result")
        assert code == 200
        assert payload["result"] == {"kind": "probe", "echo": "hi"}

    def test_result_before_terminal_conflicts(self, served):
        service, base = served
        code, job, _ = _post(f"{base}/jobs",
                             {"kind": "probe", "params": {"sleep_s": 1.0}})
        assert code == 202
        code, payload = _get(f"{base}/jobs/{job['id']}/result")
        assert (code, payload["error"]) == (409, "not finished")

    def test_failed_job_reports_error_kind(self, served):
        service, base = served
        code, job, _ = _post(f"{base}/jobs",
                             {"kind": "probe", "params": {"fail": "nope"}})
        assert service.get(job["id"]).wait(timeout=10.0)
        code, payload = _get(f"{base}/jobs/{job['id']}/result")
        assert code == 200
        assert (payload["error"], payload["error_kind"]) == ("nope", "ValueError")

    def test_progress_endpoint(self, served):
        service, base = served
        code, job, _ = _post(f"{base}/jobs",
                             {"kind": "probe", "params": {"echo": "p"}})
        assert code == 202
        code, progress = _get(f"{base}/jobs/{job['id']}/progress")
        assert code == 200
        # The job's own live status...
        assert progress["job"]["id"] == job["id"]
        assert progress["job"]["state"] in (
            "pending", "running", "done", "failed"
        )
        assert progress["job"]["attempts"] >= 0
        # ...plus the service-wide context explaining it.
        assert progress["counters"]["server.submitted"] >= 1
        assert progress["queue"]["capacity"] == 4
        assert progress["breaker"]["state"] == "closed"
        assert "inflight" in progress
        # Attempts are visible once the job actually ran.
        assert service.get(job["id"]).wait(timeout=10.0)
        _, progress = _get(f"{base}/jobs/{job['id']}/progress")
        assert progress["job"]["state"] == "done"
        assert progress["job"]["attempts"] == 1

    def test_progress_unknown_job_404(self, served):
        _, base = served
        assert _get(f"{base}/jobs/job-999999/progress")[0] == 404

    def test_unknown_job_and_route_404(self, served):
        _, base = served
        assert _get(f"{base}/jobs/job-999999")[0] == 404
        assert _get(f"{base}/nope")[0] == 404

    def test_malformed_spec_400(self, served):
        _, base = served
        assert _post(f"{base}/jobs", {"kind": "mine_bitcoin"})[0] == 400
        assert _post(f"{base}/jobs", None)[0] == 400

    def test_saturation_429_with_retry_after(self, served):
        service, base = served
        # Two workers blocked + four queued fills capacity 4.  Params
        # differ per job so none of them coalesce.
        blockers = []
        for i in range(2):
            code, job, _ = _post(
                f"{base}/jobs",
                {"kind": "probe", "params": {"sleep_s": 1.5, "echo": i}},
            )
            assert code == 202
            blockers.append(job["id"])
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if all(service.get(j).state == "running" for j in blockers):
                break
            time.sleep(0.01)
        for i in range(4):
            code, _, _ = _post(
                f"{base}/jobs",
                {"kind": "probe", "params": {"sleep_s": 1.5, "echo": 10 + i}},
            )
            assert code == 202
        code, payload, headers = _post(
            f"{base}/jobs", {"kind": "probe", "params": {"echo": "shed"}}
        )
        assert code == 429
        assert payload["retry_after_s"] > 0
        assert int(headers["Retry-After"]) >= 1

    def test_health_ready_metrics_and_drain(self, served):
        service, base = served
        assert _get(f"{base}/healthz")[0] == 200
        assert _get(f"{base}/readyz")[0] == 200
        code, _, _ = _post(f"{base}/drain", {})
        assert code == 202
        code, health = _get(f"{base}/readyz")
        assert (code, health["status"]) == (503, "draining")
        assert _get(f"{base}/healthz")[0] == 200  # still alive
        code, metrics = _get(f"{base}/metrics")
        assert code == 200
        assert "counters" in metrics and "breaker" in metrics
        code, payload, _ = _post(f"{base}/jobs", {"kind": "probe"})
        assert code == 503
