"""Circuit-breaker state machine, including half-open edge cases.

The breaker is shared by two tiers with different stakes: in the
characterization service it pauses dequeue; in the remote cache tier
it flips the client into local-only degraded mode.  The edge cases
here — concurrent half-open probes, a failure *during* the probe, and
clock handling — are exactly the windows where a buggy breaker either
lets a thundering herd through or wedges open forever.
"""

import threading

import pytest

from repro import obs
from repro.server.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker

pytestmark = pytest.mark.no_chaos


class FakeClock:
    """Monotonic test clock advanced explicitly."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def tripped_breaker(threshold=3, cooldown_s=10.0, **kw):
    clock = FakeClock()
    breaker = CircuitBreaker(threshold, cooldown_s, clock=clock, **kw)
    for _ in range(threshold):
        breaker.record_failure()
    assert breaker.state == OPEN
    return breaker, clock


class TestBasicTransitions:
    def test_closed_until_threshold(self):
        breaker = CircuitBreaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN and not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_probe_success_closes(self):
        breaker, clock = tripped_breaker(cooldown_s=5.0)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.allow()


class TestHalfOpenEdgeCases:
    def test_concurrent_probes_admit_exactly_one(self):
        """N threads racing allow() after cooldown: one probe, N-1 waiters.

        Two admitted probes would mean double traffic into a dependency
        the breaker believes is down — the exact herd it exists to stop.
        """
        breaker, clock = tripped_breaker(cooldown_s=1.0)
        clock.advance(1.0)
        start = threading.Barrier(8)
        admitted = []

        def racer():
            start.wait()
            if breaker.allow():
                admitted.append(threading.get_ident())

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(admitted) == 1
        assert breaker.state == HALF_OPEN
        # And the waiters keep being refused until the probe resolves.
        assert not breaker.allow()

    def test_failure_during_probe_reopens_and_restarts_cooldown(self):
        breaker, clock = tripped_breaker(cooldown_s=4.0)
        clock.advance(4.0)
        assert breaker.allow()  # the probe
        clock.advance(1.0)
        breaker.record_failure()  # probe's operation lost its worker
        assert breaker.state == OPEN
        # Cooldown restarts from the probe *failure*, not the original
        # trip: 3.9s later (7.9s > original 4s cooldown) still refused.
        clock.advance(3.9)
        assert not breaker.allow()
        clock.advance(0.1)
        assert breaker.allow()

    def test_failed_probe_releases_probe_slot(self):
        """After a probe fails, the next half-open window admits a new
        probe — ``_probing`` must not stay latched or the breaker
        wedges open forever."""
        breaker, clock = tripped_breaker(cooldown_s=2.0)
        for _ in range(3):  # several probe/fail rounds
            clock.advance(2.0)
            assert breaker.allow()
            breaker.record_failure()
            assert breaker.state == OPEN

    def test_single_failure_in_half_open_trips_below_threshold(self):
        """HALF_OPEN is a vote of one: a single probe failure re-opens
        even though threshold is 3 consecutive failures in CLOSED."""
        breaker, clock = tripped_breaker(threshold=3, cooldown_s=1.0)
        breaker.record_success()  # back to CLOSED... (not via probe)
        assert breaker.state == CLOSED
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_success_during_half_open_clears_probe_flag(self):
        breaker, clock = tripped_breaker(cooldown_s=1.0)
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        # A fresh trip must behave like the first: probe admitted after
        # cooldown, i.e. no stale _probing latch from the last cycle.
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()


class TestClockBehavior:
    def test_cooldown_boundary_is_exact_with_injected_clock(self):
        breaker, clock = tripped_breaker(cooldown_s=5.0)
        clock.advance(4.999999)
        assert not breaker.allow()
        clock.advance(0.000001)
        assert breaker.allow()

    def test_repeated_failures_while_open_push_cooldown_forward(self):
        """Failures recorded while OPEN (e.g. queued operations draining
        into a dead dependency) restart the cooldown — the window is
        measured from the *latest* evidence of failure."""
        breaker, clock = tripped_breaker(cooldown_s=3.0)
        clock.advance(2.0)
        breaker.record_failure()  # still down
        clock.advance(2.0)  # 4.0 since trip, 2.0 since last failure
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()

    def test_frozen_clock_never_half_opens(self):
        """A clock that does not advance (legal for monotonic: it may
        stand still, never run backwards) keeps the breaker OPEN
        rather than dividing by an elapsed-time assumption."""
        breaker, clock = tripped_breaker(cooldown_s=0.5)
        for _ in range(100):
            assert not breaker.allow()
        assert breaker.state == OPEN


class TestNaming:
    def test_metrics_emitted_under_custom_name(self):
        with obs.Tracer() as tracer:
            breaker, clock = tripped_breaker(
                threshold=2, cooldown_s=1.0, name="cache.remote.breaker"
            )
            clock.advance(1.0)
            assert breaker.allow()
            breaker.record_success()
        assert tracer.counters["cache.remote.breaker.trip"] == 1
        assert tracer.counters["cache.remote.breaker.probe"] == 1
        assert tracer.counters["cache.remote.breaker.close"] == 1
        gauges = tracer.metrics_snapshot()["gauges"]
        assert gauges["cache.remote.breaker.state"] == 0  # closed again
        assert "server.breaker.trip" not in tracer.counters

    def test_default_name_unchanged(self):
        with obs.Tracer() as tracer:
            breaker = CircuitBreaker(threshold=1)
            breaker.record_failure()
        assert tracer.counters["server.breaker.trip"] == 1
