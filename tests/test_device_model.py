"""Unit and property tests for the cryogenic-aware FinFET compact model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import (
    CryoFinFET,
    FinFETParams,
    default_nfet_5nm,
    default_pfet_5nm,
    sweep_ids_vgs,
)

VDD = 0.7


@pytest.fixture(scope="module")
def nfet():
    return CryoFinFET(default_nfet_5nm())


@pytest.fixture(scope="module")
def pfet():
    return CryoFinFET(default_pfet_5nm())


class TestParams:
    def test_width_from_fin_geometry(self):
        p = FinFETParams(fin_height=50e-9, fin_thickness=6e-9, nfin=3)
        assert p.width == pytest.approx(3 * 106e-9)

    def test_with_fins_copies(self):
        p = default_nfet_5nm(nfin=2)
        q = p.with_fins(4)
        assert q.nfin == 4
        assert p.nfin == 2
        assert q.vth0 == p.vth0

    def test_rejects_bad_polarity(self):
        with pytest.raises(ValueError):
            FinFETParams(polarity="x")

    def test_rejects_nonpositive_vth(self):
        with pytest.raises(ValueError):
            FinFETParams(vth0=-0.1)

    def test_rejects_zero_fins(self):
        with pytest.raises(ValueError):
            FinFETParams(nfin=0)

    def test_rejects_nonpositive_geometry(self):
        with pytest.raises(ValueError):
            FinFETParams(length=0.0)


class TestNFetDC:
    def test_zero_vds_gives_zero_current(self, nfet):
        assert nfet.ids(VDD, 0.0, 300.0) == pytest.approx(0.0, abs=1e-12)

    def test_on_current_magnitude(self, nfet):
        # A 2-fin 5 nm-class device drives a few hundred microamps.
        ion = nfet.on_current(VDD, 300.0)
        assert 5e-5 < ion < 2e-3

    def test_monotone_in_vgs(self, nfet):
        vgs = np.linspace(0.0, VDD, 40)
        ids = sweep_ids_vgs(nfet, vgs, VDD, 300.0)
        assert np.all(np.diff(ids) > 0.0)

    def test_monotone_in_vds(self, nfet):
        vds = np.linspace(0.0, VDD, 40)
        ids = np.asarray(nfet.ids(np.full_like(vds, VDD), vds, 300.0))
        assert np.all(np.diff(ids) > 0.0)

    def test_symmetric_under_drain_source_swap(self, nfet):
        # I(vgs, -vds) must equal -I(vgs - vds, |vds|): source/drain
        # are interchangeable terminals, and the swapped device sees
        # the old drain as its source.
        fwd = nfet.ids(0.5 + 0.3, 0.3, 300.0)
        rev = nfet.ids(0.5, -0.3, 300.0)
        assert rev == pytest.approx(-fwd, rel=1e-9)

    def test_subthreshold_slope_close_to_analytic(self, nfet):
        # Extract the decade slope between two weak-inversion points.
        v1, v2 = 0.02, 0.12
        i1 = nfet.ids(v1, VDD, 300.0)
        i2 = nfet.ids(v2, VDD, 300.0)
        decades = np.log10(i2 / i1)
        ss_extracted = (v2 - v1) / decades
        assert ss_extracted == pytest.approx(nfet.subthreshold_swing(300.0), rel=0.10)

    def test_gm_positive_above_threshold(self, nfet):
        assert nfet.gm(0.5, VDD, 300.0) > 0.0

    def test_gds_positive(self, nfet):
        assert nfet.gds(VDD, 0.35, 300.0) > 0.0

    def test_vectorized_matches_scalar(self, nfet):
        vgs = np.array([0.1, 0.3, 0.6])
        vds = np.array([0.05, 0.4, 0.7])
        vec = np.asarray(nfet.ids(vgs, vds, 77.0))
        for i in range(3):
            assert vec[i] == pytest.approx(nfet.ids(float(vgs[i]), float(vds[i]), 77.0))


class TestPFetDC:
    def test_negative_current_for_negative_bias(self, pfet):
        assert pfet.ids(-VDD, -VDD, 300.0) < 0.0

    def test_off_when_gate_at_source(self, pfet):
        ioff = abs(pfet.ids(0.0, -VDD, 300.0))
        ion = abs(pfet.ids(-VDD, -VDD, 300.0))
        assert ioff < 1e-3 * ion

    def test_mirror_symmetry_with_own_params(self, pfet):
        # |I_p(-v, -v)| equals the n-style evaluation of the same
        # parameter set magnitudes.
        mag = abs(pfet.ids(-0.5, -0.4, 300.0))
        assert mag > 0.0

    def test_weaker_than_nfet_at_same_size(self, nfet, pfet):
        assert pfet.on_current(VDD, 300.0) < nfet.on_current(VDD, 300.0)


class TestCryogenicBehaviour:
    """The headline physics trends of the paper (Fig. 1)."""

    def test_on_current_nearly_temperature_independent(self, nfet):
        # Paper: ON current remains almost the same from 300 K to 10 K,
        # which is why cell delay barely changes (Fig. 2a).
        ion_300 = nfet.on_current(VDD, 300.0)
        ion_10 = nfet.on_current(VDD, 10.0)
        assert abs(ion_10 / ion_300 - 1.0) < 0.15

    def test_off_current_drops_orders_of_magnitude(self, nfet):
        # Paper: leakage decreases by several orders of magnitude.
        ioff_300 = nfet.off_current(VDD, 300.0)
        ioff_10 = nfet.off_current(VDD, 10.0)
        assert ioff_10 < 1e-4 * ioff_300

    def test_threshold_rises_when_cooling(self, nfet):
        assert nfet.threshold_voltage(10.0) > nfet.threshold_voltage(300.0) + 0.05

    def test_swing_steepens_when_cooling(self, nfet):
        assert nfet.subthreshold_swing(10.0) < 0.25 * nfet.subthreshold_swing(300.0)

    def test_mobility_improves_when_cooling(self, nfet):
        assert nfet.mobility(10.0) > 1.3 * nfet.mobility(300.0)

    def test_gate_capacitance_slightly_lower_at_cryo(self, nfet):
        # Paper Fig. 2(b): slightly lower switching energy at 10 K due
        # to the surface-potential-induced capacitance change.
        c300 = nfet.gate_capacitance(temperature_k=300.0)
        c10 = nfet.gate_capacitance(temperature_k=10.0)
        assert c10 < c300
        assert c10 > 0.9 * c300

    def test_pfet_shows_same_trends(self, pfet):
        assert pfet.off_current(VDD, 10.0) < 1e-4 * pfet.off_current(VDD, 300.0)
        assert abs(pfet.on_current(VDD, 10.0) / pfet.on_current(VDD, 300.0) - 1.0) < 0.15


class TestModelProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        vgs=st.floats(min_value=0.0, max_value=0.8),
        vds=st.floats(min_value=0.0, max_value=0.8),
        t=st.floats(min_value=4.0, max_value=350.0),
    )
    def test_nfet_current_nonnegative_in_first_quadrant(self, vgs, vds, t):
        device = CryoFinFET(default_nfet_5nm())
        assert device.ids(vgs, vds, t) >= -1e-15

    @settings(max_examples=60, deadline=None)
    @given(
        vgs=st.floats(min_value=0.0, max_value=0.8),
        t=st.floats(min_value=4.0, max_value=350.0),
    )
    def test_current_finite_everywhere(self, vgs, t):
        device = CryoFinFET(default_nfet_5nm())
        value = device.ids(vgs, 0.7, t)
        assert np.isfinite(value)

    @settings(max_examples=40, deadline=None)
    @given(nfin=st.integers(min_value=1, max_value=8))
    def test_current_scales_with_fins(self, nfin):
        base = CryoFinFET(default_nfet_5nm(nfin=1))
        scaled = CryoFinFET(default_nfet_5nm(nfin=nfin))
        ratio = scaled.on_current(VDD, 300.0) / base.on_current(VDD, 300.0)
        assert ratio == pytest.approx(nfin, rel=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(
        t1=st.floats(min_value=4.0, max_value=350.0),
        t2=st.floats(min_value=4.0, max_value=350.0),
    )
    def test_leakage_monotone_in_temperature(self, t1, t2):
        device = CryoFinFET(default_nfet_5nm())
        lo, hi = sorted((t1, t2))
        assert device.off_current(VDD, lo) <= device.off_current(VDD, hi) * (1.0 + 1e-9)


class TestSmallSignalArraySignatures:
    """Regression: gm/gds/ids_gm_gds accept arrays (they were scalar-only)."""

    def test_gm_accepts_arrays(self, nfet):
        vgs = np.linspace(0.0, VDD, 11)
        vds = np.full_like(vgs, 0.5)
        gm = nfet.gm(vgs, vds, 300.0)
        assert isinstance(gm, np.ndarray) and gm.shape == vgs.shape
        scalar = [nfet.gm(float(g), 0.5, 300.0) for g in vgs]
        np.testing.assert_allclose(gm, scalar, rtol=1e-12)

    def test_gds_accepts_arrays(self, nfet):
        vds = np.linspace(0.01, VDD, 11)
        vgs = np.full_like(vds, VDD)
        gds = nfet.gds(vgs, vds, 300.0)
        assert isinstance(gds, np.ndarray) and gds.shape == vds.shape
        scalar = [nfet.gds(VDD, float(d), 300.0) for d in vds]
        np.testing.assert_allclose(gds, scalar, rtol=1e-12)

    def test_gm_gds_broadcast_scalar_against_array(self, nfet):
        vgs = np.linspace(0.0, VDD, 7)
        np.testing.assert_allclose(
            nfet.gm(vgs, 0.4, 300.0), nfet.gm(vgs, np.full_like(vgs, 0.4), 300.0)
        )
        np.testing.assert_allclose(
            nfet.gds(0.6, vgs, 300.0), nfet.gds(np.full(7, 0.6), vgs, 300.0)
        )

    def test_scalar_inputs_return_floats(self, nfet):
        assert isinstance(nfet.gm(0.5, 0.5, 77.0), float)
        assert isinstance(nfet.gds(0.5, 0.5, 77.0), float)
        ids, gm, gds = nfet.ids_gm_gds(0.5, 0.5, 77.0)
        assert all(isinstance(v, float) for v in (ids, gm, gds))

    @pytest.mark.parametrize("temperature", [300.0, 77.0, 10.0])
    def test_ids_gm_gds_matches_reference_stencils(self, nfet, temperature):
        vgs = np.linspace(0.0, VDD, 13)
        vds = np.linspace(0.01, VDD, 13)
        ids, gm, gds = nfet.ids_gm_gds(vgs, vds, temperature)
        np.testing.assert_allclose(ids, nfet.ids(vgs, vds, temperature), rtol=1e-12)
        np.testing.assert_allclose(gm, nfet.gm(vgs, vds, temperature), rtol=1e-12)
        np.testing.assert_allclose(gds, nfet.gds(vgs, vds, temperature), rtol=1e-12)

    def test_kernel_params_match_ids(self, nfet):
        from repro.device.bsimcmg import ids_core

        vgs, vds = 0.45, 0.3
        direct = nfet.ids(vgs, vds, 77.0)
        via_core = ids_core(vgs, vds, **nfet.kernel_params(77.0))
        assert float(via_core) == direct
