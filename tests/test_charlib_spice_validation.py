"""Cross-validation: analytic characterization vs transistor-level SPICE.

The analytic backend stands in for the paper's 10^6-simulation
SiliconSmart run; these tests pin it to the reference transient
backend on representative cells — absolute agreement within a bounded
factor, and identical temperature *trends* (the property Fig. 2
depends on).
"""

import pytest

from repro.charlib import AnalyticCharacterizer, SpiceCharacterizer
from repro.pdk import cryo5_technology
from repro.pdk.catalog import make_inv, make_nand

TECH = cryo5_technology()
SLEW = 8e-12
LOAD = 3.2e-15


@pytest.fixture(scope="module")
def spice300():
    return SpiceCharacterizer(TECH, 300.0)


@pytest.fixture(scope="module")
def analytic300():
    return AnalyticCharacterizer(TECH, 300.0)


class TestInverterAgreement:
    @pytest.fixture(scope="class")
    def measured(self, spice300):
        return spice300.measure_arc(make_inv(2), "A", "Y", input_rising=True, slew=SLEW, load=LOAD)

    @pytest.fixture(scope="class")
    def modeled(self, analytic300):
        cell = analytic300.characterize_cell(make_inv(2))
        return cell.arcs[0]

    def test_delay_within_bounded_factor(self, measured, modeled):
        predicted = modeled.cell_fall.lookup(SLEW, LOAD)
        ratio = predicted / measured.delay
        assert 0.3 < ratio < 3.0, f"analytic/spice delay ratio {ratio:.2f}"

    def test_slew_within_bounded_factor(self, measured, modeled):
        predicted = modeled.fall_transition.lookup(SLEW, LOAD)
        ratio = predicted / measured.output_slew
        assert 0.3 < ratio < 3.5, f"analytic/spice slew ratio {ratio:.2f}"


class TestLoadScalingAgreement:
    def test_both_backends_scale_linearly_with_load(self, spice300, analytic300):
        cell = make_inv(2)
        arc = analytic300.characterize_cell(cell).arcs[0]
        loads = (1.6e-15, 6.4e-15)
        spice_ratio = (
            spice300.measure_arc(cell, "A", "Y", True, SLEW, loads[1]).delay
            / spice300.measure_arc(cell, "A", "Y", True, SLEW, loads[0]).delay
        )
        model_ratio = arc.cell_fall.lookup(SLEW, loads[1]) / arc.cell_fall.lookup(
            SLEW, loads[0]
        )
        # Both should be dominated by the load term (~4x ratio);
        # require agreement of the scaling factor within 40 %.
        assert spice_ratio == pytest.approx(model_ratio, rel=0.4)


class TestTemperatureTrendAgreement:
    """The decisive check: both backends agree that cooling to 10 K
    leaves delay nearly unchanged (the Fig. 2a claim)."""

    def test_spice_delay_ratio_matches_analytic(self, analytic300):
        cell = make_nand(2, 1)
        spice_cold = SpiceCharacterizer(TECH, 10.0)
        spice_warm = SpiceCharacterizer(TECH, 300.0)
        d_cold = spice_cold.measure_arc(cell, "A", "Y", True, SLEW, LOAD).delay
        d_warm = spice_warm.measure_arc(cell, "A", "Y", True, SLEW, LOAD).delay
        spice_ratio = d_cold / d_warm

        analytic_cold = AnalyticCharacterizer(TECH, 10.0)
        a_cold = analytic_cold.characterize_cell(cell).arcs[0].cell_fall.lookup(SLEW, LOAD)
        a_warm = analytic300.characterize_cell(cell).arcs[0].cell_fall.lookup(SLEW, LOAD)
        analytic_ratio = a_cold / a_warm

        assert spice_ratio == pytest.approx(1.0, abs=0.3)
        assert analytic_ratio == pytest.approx(spice_ratio, abs=0.3)


class TestSpiceBackendCellCharacterization:
    def test_full_cell_characterization_small_grid(self, spice300):
        cell = spice300.characterize_cell(
            make_inv(1), slews=(4e-12, 16e-12), loads=(8e-16, 3.2e-15)
        )
        arc = cell.arcs[0]
        assert arc.cell_rise.min_value() > 0.0
        assert arc.cell_rise.lookup(16e-12, 3.2e-15) > arc.cell_rise.lookup(4e-12, 8e-16)

    def test_energy_positive_for_rising_output(self, spice300):
        m = spice300.measure_arc(make_inv(1), "A", "Y", input_rising=False, slew=SLEW, load=LOAD)
        assert m.energy > 0.0
