"""Tests for the observability layer (``repro.obs``)."""

import io
import json
import threading

import pytest

from repro import obs
from repro.obs.summary import build_summary


class TestSpans:
    def test_nested_spans_record_parentage(self):
        with obs.Tracer() as tracer:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
                with obs.span("inner"):
                    pass
        assert [s.name for s in tracer.spans] == ["inner", "inner", "outer"]
        outer = tracer.spans[-1]
        for inner in tracer.spans[:2]:
            assert inner.parent_id == outer.span_id
            assert inner.duration is not None and inner.duration >= 0.0
        assert outer.parent_id is None

    def test_span_attrs_and_set(self):
        with obs.Tracer() as tracer:
            with obs.span("stage", circuit="adder") as sp:
                sp.set(gates=42)
        record = tracer.spans[0]
        assert record.attrs["circuit"] == "adder"
        assert record.attrs["gates"] == 42

    def test_span_error_status(self):
        with obs.Tracer() as tracer:
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("nope")
        assert tracer.spans[0].status == "error"
        assert tracer.spans[0].attrs["error"] == "ValueError"

    def test_traced_decorator(self):
        @obs.traced("my.func")
        def work(x):
            return x + 1

        assert work(1) == 2  # disabled: plain call
        with obs.Tracer() as tracer:
            assert work(2) == 3
        assert tracer.spans[0].name == "my.func"


class TestMetrics:
    def test_counter_aggregation(self):
        with obs.Tracer() as tracer:
            obs.count("hits")
            obs.count("hits", 2)
            obs.count("misses", 5)
        assert tracer.counters == {"hits": 3, "misses": 5}

    def test_counters_attributed_to_active_span(self):
        with obs.Tracer() as tracer:
            with obs.span("a"):
                obs.count("k", 1)
            with obs.span("b"):
                obs.count("k", 10)
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["a"].counters == {"k": 1}
        assert by_name["b"].counters == {"k": 10}
        assert tracer.counters["k"] == 11

    def test_gauge_and_histogram(self):
        with obs.Tracer() as tracer:
            obs.gauge("rms", 0.5)
            obs.gauge("rms", 0.25)
            for v in (1.0, 2.0, 3.0, 4.0):
                obs.observe("lat", v)
        snap = tracer.metrics_snapshot()
        assert snap["gauges"]["rms"] == 0.25
        hist = snap["histograms"]["lat"]
        assert hist["count"] == 4
        assert hist["min"] == 1.0 and hist["max"] == 4.0
        assert hist["mean"] == pytest.approx(2.5)

    def test_histogram_percentiles(self):
        with obs.Tracer() as tracer:
            for v in range(1, 101):
                obs.observe("lat", float(v))
        hist = tracer.metrics_snapshot()["histograms"]["lat"]
        assert hist["p50"] == 51.0
        assert hist["p95"] == 96.0
        assert hist["p99"] == 100.0
        # Tiny samples clamp to the last element instead of failing.
        with obs.Tracer() as tracer:
            obs.observe("one", 3.5)
        hist = tracer.metrics_snapshot()["histograms"]["one"]
        assert hist["p50"] == hist["p95"] == hist["p99"] == 3.5

    def test_percentiles_rendered_in_summary(self):
        with obs.Tracer() as tracer:
            for v in (1.0, 2.0, 3.0):
                obs.observe("lat", v)
        text = tracer.render_summary()
        assert "p50=" in text and "p95=" in text and "p99=" in text


class TestDisabled:
    def test_primitives_are_noops_without_tracer(self):
        assert obs.current_tracer() is None
        # None of these should raise or allocate tracer state.
        with obs.span("nothing", attr=1) as sp:
            sp.set(more=2)
        obs.count("nothing")
        obs.gauge("nothing", 1.0)
        obs.observe("nothing", 1.0)
        assert obs.current_tracer() is None

    def test_disabled_span_is_shared_singleton(self):
        assert obs.span("a") is obs.span("b")

    def test_uninstall_restores_previous(self):
        outer = obs.Tracer()
        outer.install()
        try:
            inner = obs.Tracer()
            inner.install()
            assert obs.current_tracer() is inner
            inner.uninstall()
            assert obs.current_tracer() is outer
        finally:
            outer.uninstall()
        assert obs.current_tracer() is None


class TestContextIsolation:
    def test_threads_do_not_share_tracers(self):
        results = {}

        def worker(name, n):
            # A fresh thread starts with no tracer installed.
            results[f"{name}_pre"] = obs.current_tracer()
            with obs.Tracer() as tracer:
                with obs.span(name):
                    for _ in range(n):
                        obs.count("work")
            results[name] = tracer

        threads = [
            threading.Thread(target=worker, args=(f"t{i}", i + 1)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i in range(4):
            assert results[f"t{i}_pre"] is None
            tracer = results[f"t{i}"]
            assert [s.name for s in tracer.spans] == [f"t{i}"]
            assert tracer.counters == {"work": i + 1}

    def test_shared_tracer_keeps_span_trees_separate(self):
        tracer = obs.Tracer()

        def worker(name):
            tracer.install()
            try:
                with obs.span(name):
                    with obs.span("child"):
                        pass
            finally:
                tracer.uninstall()

        threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_id = {s.span_id: s for s in tracer.spans}
        children = [s for s in tracer.spans if s.name == "child"]
        assert len(children) == 3
        # Every child's parent is the root of its own thread, never a
        # root from a sibling thread.
        parents = {by_id[c.parent_id].name for c in children}
        assert parents == {"t0", "t1", "t2"}


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.Tracer(sinks=[obs.JsonlSink(path)]) as tracer:
            with obs.span("outer", circuit="ctrl"):
                with obs.span("inner"):
                    obs.count("steps", 7)
            obs.gauge("g", 1.5)
            obs.observe("h", 2.0)
        spans, metrics = obs.read_jsonl(path)
        assert [s.name for s in spans] == ["inner", "outer"]
        assert spans[1].attrs == {"circuit": "ctrl"}
        assert spans[0].counters == {"steps": 7}
        assert spans[0].parent_id == spans[1].span_id
        assert metrics["counters"] == {"steps": 7}
        assert metrics["gauges"] == {"g": 1.5}
        assert metrics["histograms"]["h"]["count"] == 1

    def test_jsonl_lines_are_valid_json(self):
        stream = io.StringIO()
        with obs.Tracer(sinks=[obs.JsonlSink(stream)]):
            with obs.span("a"):
                pass
        lines = [l for l in stream.getvalue().splitlines() if l]
        kinds = [json.loads(l)["type"] for l in lines]
        assert kinds == ["span", "metrics"]

    def test_in_memory_sink(self):
        sink = obs.InMemorySink()
        with obs.Tracer(sinks=[sink]):
            with obs.span("x"):
                obs.count("c")
        assert [s.name for s in sink.spans] == ["x"]
        assert sink.metrics["counters"] == {"c": 1}

    def test_sink_close_is_idempotent_end_to_end(self, tmp_path):
        # The signal path (CLI unwinding on SIGINT) and the tracer's
        # own close can both reach Sink.close; the second close and any
        # write after it must be silent no-ops.
        path = tmp_path / "trace.jsonl"
        sink = obs.JsonlSink(path)
        tracer = obs.Tracer(sinks=[sink])
        with tracer:
            with obs.span("work"):
                pass
        sink.close()  # second close after the tracer already closed
        tracer.close()  # tracer close is idempotent too
        sink.on_span(tracer.spans[0])  # write-after-close: dropped
        sink.on_metrics({"type": "metrics"})
        spans, _ = obs.read_jsonl(path)
        assert [s.name for s in spans] == ["work"]

    def test_sink_borrowed_stream_closed_by_owner(self):
        stream = io.StringIO()
        sink = obs.JsonlSink(stream)
        stream.close()  # owner closes first
        sink.on_span(
            obs.SpanRecord(span_id=1, parent_id=None, name="x", start=0.0)
        )  # must not raise
        sink.close()
        sink.close()

    def test_read_jsonl_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.Tracer(sinks=[obs.JsonlSink(path)]):
            with obs.span("kept"):
                pass
        with open(path, "a") as fh:
            fh.write('{"type": "span", "id": 99, "name": "torn"')  # no tail
        with pytest.warns(obs.TraceFormatWarning, match="malformed"):
            spans, metrics = obs.read_jsonl(path)
        assert [s.name for s in spans] == ["kept"]
        assert metrics["skipped_lines"] == 1

    def test_read_jsonl_metrics_only_file(self, tmp_path):
        # A run killed before any span completed leaves metrics only
        # (or nothing); report-trace must still render it.
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "metrics", "counters": {"c": 1}}\n')
        spans, metrics = obs.read_jsonl(path)
        assert spans == []
        assert metrics["counters"] == {"c": 1}
        assert "(no spans recorded)" in obs.render_summary(spans, metrics)

    def test_read_jsonl_span_missing_fields_warns(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "span", "id": 1}\n[1, 2]\n')
        with pytest.warns(obs.TraceFormatWarning, match="missing fields"):
            spans, metrics = obs.read_jsonl(path)
        assert spans == []
        assert metrics["skipped_lines"] == 2


class TestSummary:
    def test_summary_tree_aggregates_repeats(self):
        with obs.Tracer() as tracer:
            for _ in range(3):
                with obs.span("pass"):
                    obs.count("n", 2)
        root = build_summary(tracer.spans)
        node = root.children["pass"]
        assert node.calls == 3
        assert node.counters == {"n": 6}

    def test_render_summary_mentions_spans_and_counters(self):
        with obs.Tracer() as tracer:
            with obs.span("flow.run"):
                with obs.span("flow.map"):
                    obs.count("map.nodes_mapped", 9)
        text = tracer.render_summary()
        assert "flow.run" in text
        assert "flow.map" in text
        assert "map.nodes_mapped" in text
        assert "top counters" in text

    def test_render_empty(self):
        assert "(no spans recorded)" in obs.render_summary([], {})


class TestPipelineIntegration:
    def test_flow_emits_stage_spans(self):
        from repro.benchgen import build_circuit
        from repro.charlib import default_library
        from repro.core import CryoSynthesisFlow

        aig = build_circuit("ctrl", "small")
        library = default_library(300.0)
        with obs.Tracer() as tracer:
            flow = CryoSynthesisFlow(library, "p_a_d")
            result = flow.run(aig)
            flow.signoff_power(result, clock_period=result.critical_delay * 1.1)
        names = {s.name for s in tracer.spans}
        assert {"flow.run", "flow.c2rs", "flow.power_restructure", "flow.map",
                "flow.sta", "flow.signoff_power"} <= names
        assert {"synth.rewrite", "synth.balance", "synth.resub"} <= names
        assert tracer.counters.get("sta.timing_queries", 0) >= 1
        assert tracer.counters.get("map.nodes_mapped", 0) > 0

    def test_flow_result_to_dict_round_trips_json(self):
        from repro.benchgen import build_circuit
        from repro.charlib import default_library
        from repro.core import CryoSynthesisFlow

        aig = build_circuit("ctrl", "small")
        library = default_library(300.0)
        flow = CryoSynthesisFlow(library, "baseline")
        result = flow.run(aig)
        flow.signoff_power(result, clock_period=result.critical_delay * 1.1)
        data = json.loads(json.dumps(result.to_dict()))
        assert data["circuit"] == "ctrl"
        assert data["num_gates"] == result.num_gates
        assert data["power"]["total_w"] == pytest.approx(result.total_power)
        total = (data["power"]["leakage_w"] + data["power"]["internal_w"]
                 + data["power"]["switching_w"])
        assert total == pytest.approx(data["power"]["total_w"])

    def test_calibration_emits_fit_trace(self):
        from repro.device import default_nfet_5nm
        from repro.device.calibration import calibrate
        from repro.device.measurement import CryoProbeStation, perturbed_silicon

        base = default_nfet_5nm()
        station = CryoProbeStation(perturbed_silicon(base, seed=5), seed=6)
        sweeps = [station.sweep_ids_vgs(0.05, 300.0, points=12),
                  station.sweep_ids_vgs(0.75, 10.0, points=12)]
        with obs.Tracer() as tracer:
            calibrate(sweeps, base, max_iterations=8)
        names = [s.name for s in tracer.spans]
        assert "calibration.fit" in names
        assert tracer.counters["calibration.residual_evals"] >= 1
        assert tracer.counters["calibration.fit_iterations"] >= 1
        assert "calibration.rms_trace" in tracer.histograms
        assert "calibration.rms_log_error" in tracer.gauges

    def test_spice_newton_counters(self):
        from repro.device import CryoFinFET, default_nfet_5nm, default_pfet_5nm
        from repro.pdk import cryo5_technology
        from repro.spice import Circuit, DC, Simulator, ramp

        tech = cryo5_technology()
        circuit = Circuit("inv")
        circuit.add_vsource("vdd", "vdd", "0", DC(tech.vdd))
        circuit.add_vsource("vin", "a", "0", ramp(2e-11, 1e-11, 0.0, tech.vdd))
        circuit.add_finfet("mp", "y", "a", "vdd", CryoFinFET(default_pfet_5nm(nfin=3)))
        circuit.add_finfet("mn", "y", "a", "0", CryoFinFET(default_nfet_5nm(nfin=2)))
        circuit.add_capacitor("cl", "y", "0", 2e-15)
        with obs.Tracer() as tracer:
            Simulator(circuit, 10.0).transient(t_stop=4e-11, dt=2e-12)
        assert "spice.transient" in [s.name for s in tracer.spans]
        assert tracer.counters["spice.newton.solves"] >= 1
        assert tracer.counters["spice.newton.iterations"] >= \
            tracer.counters["spice.newton.solves"]
        assert tracer.counters["spice.transient.steps"] >= 20
