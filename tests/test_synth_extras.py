"""Additional synthesis-layer tests: cut functions, LUT networks,
script reports, word-level edge cases."""

import random

import pytest

from repro.benchgen import WordBuilder
from repro.synth import AIG, LUTNetwork, ScriptReport, compress2rs
from repro.synth.cuts import cut_function, enumerate_cuts


class TestCutFunction:
    def test_matches_eager_tables(self):
        rng = random.Random(0)
        g = AIG()
        lits = [g.add_pi() for _ in range(6)]
        for _ in range(60):
            a, b = rng.choice(lits), rng.choice(lits)
            lits.append(g.add_and(a ^ rng.randint(0, 1), b ^ rng.randint(0, 1)))
        g.add_po(lits[-1])
        eager = enumerate_cuts(g, k=4, max_cuts=6, compute_tables=True)
        for node in g.and_nodes():
            for cut in eager[node][:3]:
                if node in cut.leaves or not cut.leaves:
                    continue
                assert cut_function(g, node, cut.leaves) == cut.table, (node, cut)

    def test_invalid_leaves_rejected(self):
        g = AIG()
        a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
        y = g.add_and(g.add_and(a, b), c)
        g.add_po(y)
        # {a} alone does not separate y from the inputs.
        with pytest.raises((ValueError, KeyError)):
            cut_function(g, y >> 1, (a >> 1,))

    def test_table_free_enumeration_has_no_tables(self):
        g = AIG()
        a, b = g.add_pi(), g.add_pi()
        g.add_po(g.add_and(a, b))
        from repro.synth.cuts import NO_TABLE

        cuts = enumerate_cuts(g, k=4, compute_tables=False)
        for node in g.and_nodes():
            assert all(c.table == NO_TABLE for c in cuts[node])


class TestLutNetworkStructure:
    def test_leaf_forward_reference_rejected(self):
        net = LUTNetwork(2)
        with pytest.raises(ValueError):
            net.add_lut((5,), 0b10)

    def test_table_width_checked(self):
        net = LUTNetwork(2)
        with pytest.raises(ValueError):
            net.add_lut((1,), 0b11111)

    def test_depth_and_fanout(self):
        net = LUTNetwork(2)
        lut1 = net.add_lut((1, 2), 0b1000)
        lut2 = net.add_lut((lut1, 1), 0b0110)
        net.outputs.append((lut2, False))
        assert net.depth() == 2
        counts = net.fanout_counts()
        assert counts[1] == 2
        assert counts[lut1] == 1

    def test_simulation_width_guard(self):
        net = LUTNetwork(2)
        with pytest.raises(ValueError):
            net.simulate_nodes([1], 8)

    def test_to_aig_constant_lut(self):
        net = LUTNetwork(1)
        lut = net.add_lut((), 0)  # constant-0 LUT
        net.outputs.append((lut, False))
        net.outputs.append((lut, True))
        aig = net.to_aig()
        assert aig.evaluate([True]) == [False, True]


class TestScriptReport:
    def test_records_steps(self):
        g = AIG()
        lits = [g.add_pi() for _ in range(4)]
        for i in range(20):
            lits.append(g.add_and(lits[i % 4], lits[(i + 1) % 4] ^ 1))
        g.add_po(lits[-1])
        report = ScriptReport()
        compress2rs(g, report=report)
        assert report.steps[0][0] == "start"
        assert len(report.steps) == 12  # start + 11 script steps
        assert report.final_size() <= report.initial_size()


class TestWordLevelExtras:
    def test_neg_two_complement(self):
        wb = WordBuilder("t")
        a = wb.input_word("a", 4)
        wb.output_word("n", wb.neg(a))
        for v in range(16):
            outs = wb.aig.evaluate([bool((v >> i) & 1) for i in range(4)])
            got = sum(1 << i for i in range(4) if outs[i])
            assert got == (-v) % 16, v

    def test_equal_and_greater_equal(self):
        wb = WordBuilder("t")
        a = wb.input_word("a", 3)
        b = wb.input_word("b", 3)
        wb.aig.add_po(wb.equal(a, b), "eq")
        wb.aig.add_po(wb.greater_equal(a, b), "ge")
        for va in range(8):
            for vb in range(8):
                bits = [bool((va >> i) & 1) for i in range(3)] + [
                    bool((vb >> i) & 1) for i in range(3)
                ]
                eq, ge = wb.aig.evaluate(bits)
                assert eq == (va == vb)
                assert ge == (va >= vb)

    def test_shift_right(self):
        wb = WordBuilder("t")
        a = wb.input_word("a", 8)
        s = wb.input_word("s", 3)
        wb.output_word("y", wb.shift_right(a, s))
        rng = random.Random(0)
        for _ in range(30):
            va, vs = rng.getrandbits(8), rng.getrandbits(3)
            bits = [bool((va >> i) & 1) for i in range(8)] + [
                bool((vs >> i) & 1) for i in range(3)
            ]
            outs = wb.aig.evaluate(bits)
            got = sum(1 << i for i in range(8) if outs[i])
            assert got == va >> vs

    def test_mul_truncated_width(self):
        wb = WordBuilder("t")
        a = wb.input_word("a", 4)
        b = wb.input_word("b", 4)
        wb.output_word("p", wb.mul(a, b, width=4))
        for va, vb in ((3, 5), (15, 15), (7, 2)):
            bits = [bool((va >> i) & 1) for i in range(4)] + [
                bool((vb >> i) & 1) for i in range(4)
            ]
            outs = wb.aig.evaluate(bits)
            got = sum(1 << i for i in range(4) if outs[i])
            assert got == (va * vb) % 16


class TestDc2Script:
    def test_equivalence_and_reduction(self):
        from repro.sat import assert_equivalent
        from repro.synth import dc2

        rng = random.Random(21)
        g = AIG()
        lits = [g.add_pi() for _ in range(6)]
        for _ in range(150):
            a, b = rng.choice(lits), rng.choice(lits)
            lits.append(
                getattr(g, rng.choice(["add_and", "add_or", "add_xor"]))(
                    a ^ rng.randint(0, 1), b ^ rng.randint(0, 1)
                )
            )
        g.add_po(lits[-1])
        g.add_po(lits[-2])
        g = g.cleanup()
        result = dc2(g)
        assert_equivalent(g, result, "dc2")
        assert result.num_ands <= g.num_ands

    def test_step_trace_recorded(self):
        from repro.benchgen import build_circuit
        from repro.synth import dc2

        g = build_circuit("ctrl", "small")
        report = ScriptReport()
        dc2(g, report=report)
        labels = [label for label, _, _ in report.steps]
        assert labels[0] == "start"
        assert "rewrite" in labels and "balance" in labels
        # dc2 never runs the SAT-backed resubstitution.
        assert "resub" not in labels


class TestDotExport:
    def test_aig_dot_structure(self):
        from repro.io import aig_to_dot

        g = AIG("demo")
        a, b = g.add_pi("a"), g.add_pi("b")
        g.add_po(g.add_xor(a, b), "y")
        dot = aig_to_dot(g)
        assert dot.startswith('digraph "demo"')
        assert '"a"' in dot and '"y"' in dot
        assert "style=dashed" in dot  # xor uses inverted edges

    def test_aig_dot_size_guard(self):
        from repro.io import aig_to_dot

        g = AIG()
        lits = [g.add_pi() for _ in range(2)]
        acc = lits[0]
        for _ in range(50):
            acc = g.add_and(acc, lits[1] ^ 1)
            acc = g.add_xor(acc, lits[0])
        g.add_po(acc)
        with pytest.raises(ValueError):
            aig_to_dot(g, max_nodes=10)

    def test_netlist_dot(self):
        from repro.charlib import default_library
        from repro.io import netlist_to_dot
        from repro.mapping import map_to_gates

        g = AIG("n")
        a, b = g.add_pi("a"), g.add_pi("b")
        g.add_po(g.add_and(a, b), "y")
        lib = default_library(10.0)
        net = map_to_gates(g, lib)
        dot = netlist_to_dot(net)
        assert "digraph" in dot
        for gate in net.gates:
            assert gate.cell in dot
