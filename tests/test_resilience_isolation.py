"""Subprocess isolation: supervised workers, watchdog, restart, retry.

These tests spawn real worker subprocesses (spawn start method), so
every task function lives at module level where pickle can find it.
"""

import os
import time

import pytest

from repro import obs
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    ParallelExecutionError,
    WorkerCrashError,
    WorkerHungError,
    WorkerMemoryError,
    injecting,
)
from repro.resilience.isolation import process_map, task_heartbeat


def _square(x):
    return x * x


def _raise_on_three(x):
    if x == 3:
        raise ValueError(f"bad item {x}")
    return x


def _exit_on_three(x):
    if x == 3:
        os._exit(3)  # simulated segfault: no exception, no result
    return x


def _slow_with_heartbeats(x):
    # Runs well past the stall budget but keeps reporting progress.
    for _ in range(6):
        time.sleep(0.11)
        task_heartbeat()
    return x


def _allocate_and_stall(x):
    ballast = bytearray(96 * 1024 * 1024)  # ~96 MiB resident
    for _ in range(100):
        time.sleep(0.05)
        task_heartbeat()  # beating: only the RSS watchdog may kill us
    return len(ballast)


class TestProcessMap:
    def test_ordered_roundtrip(self):
        assert process_map(_square, list(range(8)), jobs=3) == [
            x * x for x in range(8)
        ]

    def test_empty_items(self):
        assert process_map(_square, [], jobs=4) == []

    def test_task_exception_fail_fast(self):
        with pytest.raises(ValueError, match="bad item 3") as info:
            process_map(_raise_on_three, list(range(5)), jobs=2)
        assert info.value.task_index == 3

    def test_task_exception_collect_aggregates(self):
        with pytest.raises(ParallelExecutionError) as info:
            process_map(
                _raise_on_three, [3, 1, 3, 2], jobs=2, on_error="collect"
            )
        assert len(info.value.errors) == 2
        assert {index for index, _, _ in info.value.errors} == {0, 2}

    def test_task_heartbeat_is_noop_in_parent(self):
        task_heartbeat()  # must not raise outside a worker


class TestCrashRecovery:
    def test_worker_crash_is_retried_then_surfaced(self):
        # _exit is deterministic, so the retry crashes too: after
        # 1 + retries attempts the task fails as a WorkerCrashError
        # while every other task still completes.  jobs=1 makes the
        # restart deterministic: with the sole worker dead, outstanding
        # work always forces a replacement spawn (with jobs>1 an idle
        # survivor may legitimately absorb the queue instead).
        with obs.Tracer() as tracer:
            with pytest.raises(ParallelExecutionError) as info:
                process_map(
                    _exit_on_three, list(range(5)), jobs=1, on_error="collect"
                )
        [(index, _, exc)] = info.value.errors
        assert index == 3
        assert isinstance(exc, WorkerCrashError)
        assert exc.classification == "transient"
        counters = tracer.metrics_snapshot()["counters"]
        assert counters.get("isolation.worker_crash", 0) >= 2  # original + retry
        assert counters.get("isolation.task_retry", 0) == 1
        assert counters.get("isolation.worker_restart", 0) >= 1

    def test_crash_with_fail_fast_raises_worker_error(self):
        with pytest.raises(WorkerCrashError):
            process_map(_exit_on_three, [3], jobs=1, retries=0)


@pytest.mark.no_chaos
class TestWatchdog:
    def test_rigged_hang_is_killed_and_retried(self):
        # parallel.hang fires once (decided supervisor-side at
        # dispatch): the first dispatched task stalls, the watchdog
        # kills it within the budget, and the retry completes — so the
        # fan-out still returns every result.
        plan = FaultPlan([FaultSpec("parallel.hang", first_n=1)], seed=0)
        with obs.Tracer() as tracer:
            with injecting(plan):
                start = time.monotonic()
                results = process_map(
                    _square, list(range(4)), jobs=2, task_timeout_s=1.0
                )
                elapsed = time.monotonic() - start
        assert results == [x * x for x in range(4)]
        counters = tracer.metrics_snapshot()["counters"]
        assert counters.get("isolation.watchdog_kill", 0) == 1
        assert counters.get("isolation.task_retry", 0) == 1
        # Killed within (budget + reaction time), not after some
        # multiple of it.
        assert elapsed < 30.0

    def test_hang_without_retries_surfaces_hung_error(self):
        plan = FaultPlan([FaultSpec("parallel.hang", first_n=1)], seed=0)
        with injecting(plan):
            with pytest.raises(WorkerHungError) as info:
                process_map(_square, [7], jobs=1, task_timeout_s=0.8, retries=0)
        assert info.value.classification == "transient"

    def test_heartbeats_keep_slow_worker_alive(self):
        # Total runtime (~0.7 s) far exceeds the 0.4 s stall budget;
        # the heartbeats are what keep the watchdog away.
        assert process_map(
            _slow_with_heartbeats, [1, 2], jobs=2, task_timeout_s=0.4
        ) == [1, 2]

    @pytest.mark.skipif(
        not os.path.exists("/proc/self/statm"), reason="needs Linux /proc"
    )
    def test_memory_cap_kills_oversized_worker(self):
        with pytest.raises(WorkerMemoryError, match="exceeds"):
            process_map(
                _allocate_and_stall,
                [0],
                jobs=1,
                task_timeout_s=30.0,
                max_rss_mb=48.0,
                retries=0,
            )


class TestParallelMapDelegation:
    def test_isolate_process_through_parallel_map(self):
        results = obs.parallel_map(
            _square, [2, 3, 4], jobs=2, isolate="process"
        )
        assert results == [4, 9, 16]

    def test_invalid_isolate_rejected(self):
        with pytest.raises(ValueError, match="isolate"):
            obs.parallel_map(_square, [1], jobs=2, isolate="fiber")
