"""Tests for Monte-Carlo variability analysis."""

import numpy as np
import pytest

from repro.device import default_nfet_5nm
from repro.device.montecarlo import (
    MonteCarloResult,
    mc_cell_delay,
    mc_cell_leakage,
    mc_device_metric,
    sample_params,
)
from repro.pdk.catalog import make_inv


class TestSampling:
    def test_samples_differ(self):
        rng = np.random.default_rng(0)
        base = default_nfet_5nm()
        a = sample_params(base, rng)
        b = sample_params(base, rng)
        assert a != b
        assert a != base

    def test_physical_bounds_kept(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            p = sample_params(default_nfet_5nm(), rng)
            assert p.ideality >= 1.0
            assert p.band_tail_temperature >= 1.0
            assert p.vth0 > 0.0

    def test_deterministic_with_seed(self):
        base = default_nfet_5nm()
        a = sample_params(base, np.random.default_rng(5))
        b = sample_params(base, np.random.default_rng(5))
        assert a == b


class TestDeviceMetrics:
    def test_result_statistics(self):
        result = mc_device_metric(
            lambda dev, t: dev.on_current(0.7, t),
            default_nfet_5nm(),
            300.0,
            n_samples=32,
        )
        assert isinstance(result, MonteCarloResult)
        assert result.mean > 0.0
        assert 0.0 < result.sigma_over_mu < 0.5

    def test_minimum_samples_enforced(self):
        with pytest.raises(ValueError):
            mc_device_metric(lambda d, t: 0.0, default_nfet_5nm(), 300.0, n_samples=1)

    def test_off_current_spread_larger_than_on(self):
        # Subthreshold current is exponential in Vth: its spread must
        # dwarf the on-current spread.
        on = mc_device_metric(
            lambda d, t: d.on_current(0.7, t), default_nfet_5nm(), 300.0, n_samples=32
        )
        off = mc_device_metric(
            lambda d, t: d.off_current(0.7, t), default_nfet_5nm(), 300.0, n_samples=32
        )
        assert off.sigma_over_mu > 3.0 * on.sigma_over_mu


class TestCellMonteCarlo:
    def test_delay_distribution_sane(self):
        result = mc_cell_delay(make_inv(1), 10.0, n_samples=16)
        assert result.mean > 0.0
        assert result.sigma_over_mu < 0.3

    def test_leakage_spread_room_vs_cryo(self):
        warm = mc_cell_leakage(make_inv(1), 300.0, n_samples=16)
        cold = mc_cell_leakage(make_inv(1), 10.0, n_samples=16)
        # At 10 K the leakage floor dominates: the mean collapses.
        assert cold.mean < 1e-4 * warm.mean

    def test_delay_mean_stable_across_corners(self):
        warm = mc_cell_delay(make_inv(1), 300.0, n_samples=16)
        cold = mc_cell_delay(make_inv(1), 10.0, n_samples=16)
        assert cold.mean == pytest.approx(warm.mean, rel=0.25)

    @pytest.mark.no_chaos  # per-site fire counters advance between runs, breaking replay
    def test_reproducible(self):
        a = mc_cell_delay(make_inv(1), 10.0, n_samples=8, seed=3)
        b = mc_cell_delay(make_inv(1), 10.0, n_samples=8, seed=3)
        assert np.allclose(a.samples, b.samples)
