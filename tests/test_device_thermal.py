"""Unit tests for the cryogenic thermal-physics primitives."""


import pytest
from hypothesis import given, strategies as st

from repro.device import constants, thermal


class TestThermalVoltage:
    def test_room_temperature_value(self):
        assert constants.thermal_voltage(300.0) == pytest.approx(0.02585, rel=1e-3)

    def test_rejects_nonpositive_temperature(self):
        with pytest.raises(ValueError):
            constants.thermal_voltage(0.0)
        with pytest.raises(ValueError):
            constants.thermal_voltage(-10.0)

    def test_linear_in_temperature(self):
        assert constants.thermal_voltage(150.0) == pytest.approx(
            constants.thermal_voltage(300.0) / 2.0
        )


class TestEffectiveThermalVoltage:
    def test_matches_physical_value_at_room_temperature(self):
        # With a 35 K band tail the 300 K value deviates by < 1 %.
        eff = thermal.effective_thermal_voltage(300.0, 35.0)
        phys = constants.thermal_voltage(300.0)
        assert eff == pytest.approx(phys, rel=0.01)

    def test_saturates_at_band_tail_temperature(self):
        eff_10 = thermal.effective_thermal_voltage(10.0, 35.0)
        eff_2 = thermal.effective_thermal_voltage(2.0, 35.0)
        floor = constants.BOLTZMANN_EV * 35.0
        assert eff_10 == pytest.approx(floor, rel=0.05)
        assert eff_2 == pytest.approx(floor, rel=0.01)

    def test_zero_band_tail_recovers_boltzmann(self):
        assert thermal.effective_thermal_voltage(77.0, 0.0) == pytest.approx(
            constants.thermal_voltage(77.0)
        )

    def test_rejects_negative_band_tail(self):
        with pytest.raises(ValueError):
            thermal.effective_thermal_voltage(77.0, -1.0)

    @given(
        t=st.floats(min_value=1.0, max_value=400.0),
        tbt=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_always_at_least_physical_thermal_voltage(self, t, tbt):
        assert thermal.effective_thermal_voltage(t, tbt) >= constants.thermal_voltage(t) - 1e-15

    @given(
        t1=st.floats(min_value=1.0, max_value=400.0),
        t2=st.floats(min_value=1.0, max_value=400.0),
    )
    def test_monotone_in_temperature(self, t1, t2):
        lo, hi = sorted((t1, t2))
        assert thermal.effective_thermal_voltage(lo, 35.0) <= thermal.effective_thermal_voltage(
            hi, 35.0
        ) + 1e-15


class TestSubthresholdSwing:
    def test_room_temperature_near_60mv_per_decade(self):
        ss = thermal.subthreshold_swing(300.0, 0.0, ideality=1.0)
        assert ss == pytest.approx(0.0595, rel=0.01)

    def test_cryogenic_floor_not_boltzmann(self):
        # At 10 K the Boltzmann limit would be ~2 mV/dec; band tails pin
        # the swing near 7 mV/dec (the experimentally observed floor).
        ss = thermal.subthreshold_swing(10.0, 35.0, ideality=1.0)
        boltzmann = thermal.subthreshold_swing(10.0, 0.0, ideality=1.0)
        assert boltzmann == pytest.approx(0.002, rel=0.05)
        assert 0.005 < ss < 0.010

    def test_ideality_scales_swing(self):
        base = thermal.subthreshold_swing(300.0, 35.0, ideality=1.0)
        assert thermal.subthreshold_swing(300.0, 35.0, ideality=1.5) == pytest.approx(1.5 * base)

    def test_rejects_ideality_below_one(self):
        with pytest.raises(ValueError):
            thermal.subthreshold_swing(300.0, 35.0, ideality=0.9)


class TestThresholdShift:
    def test_zero_at_reference_temperature(self):
        assert thermal.threshold_shift(300.0, 4.5e-4) == pytest.approx(0.0, abs=1e-12)

    def test_positive_when_cooling(self):
        assert thermal.threshold_shift(77.0, 4.5e-4) > 0.0
        assert thermal.threshold_shift(10.0, 4.5e-4) > thermal.threshold_shift(77.0, 4.5e-4)

    def test_magnitude_at_10k_about_100mv(self):
        # The literature the paper cites reports ~0.1 V V_th rise at
        # deep cryo for FinFET nodes.
        shift = thermal.threshold_shift(10.0, 4.5e-4)
        assert 0.05 < shift < 0.15

    def test_flattens_below_freezeout_knee(self):
        # The knee makes the increment from 20 K to 10 K much smaller
        # than the linear extrapolation from 300 K would predict.
        step_cold = thermal.threshold_shift(10.0, 4.5e-4) - thermal.threshold_shift(20.0, 4.5e-4)
        step_warm = thermal.threshold_shift(280.0, 4.5e-4) - thermal.threshold_shift(290.0, 4.5e-4)
        assert step_cold < 0.5 * step_warm

    def test_rejects_nonpositive_knee(self):
        with pytest.raises(ValueError):
            thermal.threshold_shift(77.0, 4.5e-4, freezeout_knee_k=0.0)


class TestMobility:
    def test_phonon_mobility_increases_when_cooling(self):
        mu300 = thermal.phonon_limited_mobility(300.0, 0.04)
        mu77 = thermal.phonon_limited_mobility(77.0, 0.04)
        assert mu300 == pytest.approx(0.04)
        assert mu77 > 5.0 * mu300

    def test_effective_mobility_saturates(self):
        mu10 = thermal.effective_mobility(10.0, 0.04, 0.065)
        mu2 = thermal.effective_mobility(2.0, 0.04, 0.065)
        assert mu10 == pytest.approx(0.065, rel=0.05)
        assert mu2 == pytest.approx(0.065, rel=0.01)

    def test_cryo_improvement_in_reported_range(self):
        # 10 nm-class FinFET literature reports ~58 % mobility gain.
        mu300 = thermal.effective_mobility(300.0, 0.04, 0.065)
        mu10 = thermal.effective_mobility(10.0, 0.04, 0.065)
        improvement = mu10 / mu300 - 1.0
        assert 0.3 < improvement < 2.0

    @given(t=st.floats(min_value=1.0, max_value=400.0))
    def test_effective_below_both_limits(self, t):
        mu = thermal.effective_mobility(t, 0.04, 0.065)
        assert mu < 0.065
        assert mu < thermal.phonon_limited_mobility(t, 0.04)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            thermal.phonon_limited_mobility(300.0, -0.01)
        with pytest.raises(ValueError):
            thermal.effective_mobility(300.0, 0.04, 0.0)


class TestSaturationVelocityAndCaps:
    def test_vsat_increases_at_cryo(self):
        assert thermal.saturation_velocity(10.0, 1e5) > thermal.saturation_velocity(300.0, 1e5)

    def test_vsat_reference_value(self):
        assert thermal.saturation_velocity(300.0, 1e5) == pytest.approx(1e5)

    def test_gate_cap_factor_bounds(self):
        assert thermal.gate_capacitance_factor(300.0) == pytest.approx(1.0)
        f10 = thermal.gate_capacitance_factor(10.0)
        assert 0.9 < f10 < 1.0

    def test_gate_cap_factor_rejects_bad_reduction(self):
        with pytest.raises(ValueError):
            thermal.gate_capacitance_factor(10.0, cryo_reduction=1.5)
