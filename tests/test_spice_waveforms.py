"""Unit tests for stimulus waveforms."""

import pytest
from hypothesis import given, strategies as st

from repro.spice import DC, PWL, pulse, ramp


class TestDC:
    def test_constant(self):
        w = DC(0.7)
        assert w(0.0) == 0.7
        assert w(1e9) == 0.7

    def test_no_breakpoints(self):
        assert DC(1.0).breakpoints() == ()


class TestPWL:
    def test_holds_ends(self):
        w = PWL([(1.0, 0.0), (2.0, 1.0)])
        assert w(0.0) == 0.0
        assert w(5.0) == 1.0

    def test_interpolates_linearly(self):
        w = PWL([(0.0, 0.0), (2.0, 1.0)])
        assert w(1.0) == pytest.approx(0.5)
        assert w(0.5) == pytest.approx(0.25)

    def test_multiple_segments(self):
        w = PWL([(0.0, 0.0), (1.0, 1.0), (2.0, -1.0)])
        assert w(1.5) == pytest.approx(0.0)

    def test_rejects_non_increasing_times(self):
        with pytest.raises(ValueError):
            PWL([(0.0, 0.0), (0.0, 1.0)])
        with pytest.raises(ValueError):
            PWL([(1.0, 0.0), (0.5, 1.0)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PWL([])

    def test_breakpoints_reported(self):
        w = PWL([(0.0, 0.0), (1.0, 1.0)])
        assert w.breakpoints() == (0.0, 1.0)

    @given(t=st.floats(min_value=-10, max_value=10))
    def test_output_within_value_range(self, t):
        w = PWL([(0.0, 0.0), (1.0, 1.0), (3.0, 0.25)])
        assert 0.0 <= w(t) <= 1.0


class TestRampAndPulse:
    def test_ramp_endpoints(self):
        w = ramp(1.0, 2.0, 0.0, 0.7)
        assert w(1.0) == pytest.approx(0.0)
        assert w(3.0) == pytest.approx(0.7)
        assert w(2.0) == pytest.approx(0.35)

    def test_ramp_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            ramp(0.0, 0.0, 0.0, 1.0)

    def test_falling_ramp(self):
        w = ramp(0.0, 1.0, 0.7, 0.0)
        assert w(0.5) == pytest.approx(0.35)

    def test_pulse_shape(self):
        w = pulse(0.0, 1.0, t_delay=1.0, t_rise=1.0, t_width=2.0, t_fall=1.0)
        assert w(0.5) == 0.0
        assert w(2.5) == 1.0
        assert w(10.0) == 0.0

    def test_pulse_rejects_zero_edges(self):
        with pytest.raises(ValueError):
            pulse(0.0, 1.0, 0.0, 0.0, 1.0, 1.0)
