"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold across the whole stack, stated as
properties over generated inputs rather than examples.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.io import parse_ascii, parse_binary, write_ascii, write_binary
from repro.synth import AIG, balance, lit_not, rewrite


def build_random_aig(seed: int, n_pis: int, n_ops: int) -> AIG:
    rng = random.Random(seed)
    g = AIG(f"p{seed}")
    lits = [g.add_pi() for _ in range(n_pis)]
    for _ in range(n_ops):
        a, b = rng.choice(lits), rng.choice(lits)
        op = rng.choice([g.add_and, g.add_or, g.add_xor])
        lits.append(op(a ^ rng.randint(0, 1), b ^ rng.randint(0, 1)))
    g.add_po(lits[-1])
    g.add_po(lit_not(lits[len(lits) // 2]))
    return g.cleanup()


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_pis=st.integers(min_value=2, max_value=6),
    n_ops=st.integers(min_value=5, max_value=60),
)
def test_aiger_round_trip_preserves_simulation(seed, n_pis, n_ops):
    g = build_random_aig(seed, n_pis, n_ops)
    rng = random.Random(seed)
    words = [rng.getrandbits(128) for _ in g.pis]
    reference = g.simulate(words, 128)
    assert parse_ascii(write_ascii(g)).simulate(words, 128) == reference
    assert parse_binary(write_binary(g)).simulate(words, 128) == reference


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_ops=st.integers(min_value=10, max_value=80),
)
def test_optimization_passes_preserve_simulation(seed, n_ops):
    g = build_random_aig(seed, 5, n_ops)
    rng = random.Random(seed + 1)
    words = [rng.getrandbits(256) for _ in g.pis]
    reference = g.simulate(words, 256)
    assert rewrite(g).simulate(words, 256) == reference
    assert balance(g).simulate(words, 256) == reference


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_ops=st.integers(min_value=5, max_value=50),
)
def test_balance_never_increases_depth(seed, n_ops):
    g = build_random_aig(seed, 5, n_ops)
    assert balance(g).depth() <= g.depth()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_ops=st.integers(min_value=5, max_value=50),
)
def test_rewrite_never_increases_size(seed, n_ops):
    g = build_random_aig(seed, 5, n_ops)
    assert rewrite(g).num_ands <= g.num_ands


@settings(max_examples=40, deadline=None)
@given(f=st.integers(min_value=0, max_value=0xFFFF))
def test_liberty_function_string_round_trip(f):
    """Expression -> liberty string -> parse -> same truth table."""
    from repro.charlib import parse_function
    from repro.pdk.boolexpr import truth_table

    # Build a structural expression for f via the AIG factoring path,
    # then render its liberty string through a cell template.
    from repro.pdk.boolexpr import And, Lit, Not, Or

    # Direct SOP expression over 4 vars.
    names = ["A", "B", "C", "D"]
    terms = []
    for minterm in range(16):
        if not (f >> minterm) & 1:
            continue
        lits = []
        for v in range(4):
            lit = Lit(names[v])
            lits.append(lit if (minterm >> v) & 1 else Not(lit))
        term = lits[0]
        for l in lits[1:]:
            term = And(term, l)
        terms.append(term)
    if not terms:
        return  # constant-0 has no SOP literal form here
    expr = terms[0]
    for t in terms[1:]:
        expr = Or(expr, t)
    rendered = expr.to_liberty()
    parsed = parse_function(rendered)
    assert truth_table(parsed, names) == f


@settings(max_examples=40, deadline=None)
@given(
    slew=st.floats(min_value=1e-12, max_value=2e-10),
    load=st.floats(min_value=1e-16, max_value=5e-14),
)
def test_nldm_interpolation_bounded_by_table(slew, load):
    from repro.charlib import default_library

    arc = default_library(10.0)["NAND2x1"].arcs[0]
    value = arc.cell_rise.lookup(slew, load)
    assert arc.cell_rise.min_value() <= value <= arc.cell_rise.max_value()
