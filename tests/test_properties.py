"""Cross-cutting property-based tests (hypothesis).

Invariants that must hold across the whole stack, stated as
properties over generated inputs rather than examples.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.io import parse_ascii, parse_binary, write_ascii, write_binary
from repro.synth import AIG, balance, lit_not, rewrite


def build_random_aig(seed: int, n_pis: int, n_ops: int) -> AIG:
    rng = random.Random(seed)
    g = AIG(f"p{seed}")
    lits = [g.add_pi() for _ in range(n_pis)]
    for _ in range(n_ops):
        a, b = rng.choice(lits), rng.choice(lits)
        op = rng.choice([g.add_and, g.add_or, g.add_xor])
        lits.append(op(a ^ rng.randint(0, 1), b ^ rng.randint(0, 1)))
    g.add_po(lits[-1])
    g.add_po(lit_not(lits[len(lits) // 2]))
    return g.cleanup()


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_pis=st.integers(min_value=2, max_value=6),
    n_ops=st.integers(min_value=5, max_value=60),
)
def test_aiger_round_trip_preserves_simulation(seed, n_pis, n_ops):
    g = build_random_aig(seed, n_pis, n_ops)
    rng = random.Random(seed)
    words = [rng.getrandbits(128) for _ in g.pis]
    reference = g.simulate(words, 128)
    assert parse_ascii(write_ascii(g)).simulate(words, 128) == reference
    assert parse_binary(write_binary(g)).simulate(words, 128) == reference


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_ops=st.integers(min_value=10, max_value=80),
)
def test_optimization_passes_preserve_simulation(seed, n_ops):
    g = build_random_aig(seed, 5, n_ops)
    rng = random.Random(seed + 1)
    words = [rng.getrandbits(256) for _ in g.pis]
    reference = g.simulate(words, 256)
    assert rewrite(g).simulate(words, 256) == reference
    assert balance(g).simulate(words, 256) == reference


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_ops=st.integers(min_value=5, max_value=50),
)
def test_balance_never_increases_depth(seed, n_ops):
    g = build_random_aig(seed, 5, n_ops)
    assert balance(g).depth() <= g.depth()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_ops=st.integers(min_value=5, max_value=50),
)
def test_rewrite_never_increases_size(seed, n_ops):
    g = build_random_aig(seed, 5, n_ops)
    assert rewrite(g).num_ands <= g.num_ands


@settings(max_examples=40, deadline=None)
@given(f=st.integers(min_value=0, max_value=0xFFFF))
def test_liberty_function_string_round_trip(f):
    """Expression -> liberty string -> parse -> same truth table."""
    from repro.charlib import parse_function
    from repro.pdk.boolexpr import truth_table

    # Build a structural expression for f via the AIG factoring path,
    # then render its liberty string through a cell template.
    from repro.pdk.boolexpr import And, Lit, Not, Or

    # Direct SOP expression over 4 vars.
    names = ["A", "B", "C", "D"]
    terms = []
    for minterm in range(16):
        if not (f >> minterm) & 1:
            continue
        lits = []
        for v in range(4):
            lit = Lit(names[v])
            lits.append(lit if (minterm >> v) & 1 else Not(lit))
        term = lits[0]
        for l in lits[1:]:
            term = And(term, l)
        terms.append(term)
    if not terms:
        return  # constant-0 has no SOP literal form here
    expr = terms[0]
    for t in terms[1:]:
        expr = Or(expr, t)
    rendered = expr.to_liberty()
    parsed = parse_function(rendered)
    assert truth_table(parsed, names) == f


@settings(max_examples=40, deadline=None)
@given(
    slew=st.floats(min_value=1e-12, max_value=2e-10),
    load=st.floats(min_value=1e-16, max_value=5e-14),
)
def test_nldm_interpolation_bounded_by_table(slew, load):
    from repro.charlib import default_library

    arc = default_library(10.0)["NAND2x1"].arcs[0]
    value = arc.cell_rise.lookup(slew, load)
    assert arc.cell_rise.min_value() <= value <= arc.cell_rise.max_value()


# ---------------------------------------------------------------------------
# Cryogenic FinFET compact-model invariants.  The kernel differential
# suite (tests/test_spice_kernels.py) pins vector == scalar; these pin
# the physics of the shared ``ids_core`` formula itself.

import numpy as np  # noqa: E402

from repro.device import CryoFinFET, default_nfet_5nm, default_pfet_5nm  # noqa: E402

_TEMPS = st.floats(min_value=4.0, max_value=400.0)


@settings(max_examples=50, deadline=None)
@given(temperature=_TEMPS, vds=st.floats(min_value=0.02, max_value=0.9))
def test_ids_monotone_in_vgs(temperature, vds):
    """At fixed V_ds > 0 the drain current never decreases with V_gs."""
    dev = CryoFinFET(default_nfet_5nm())
    vgs = np.linspace(0.0, 0.9, 91)
    ids = np.asarray(dev.ids(vgs, np.full_like(vgs, vds), temperature))
    assert np.all(np.diff(ids) >= 0.0)
    assert ids[-1] > ids[0]  # and it actually turns on


@settings(max_examples=50, deadline=None)
@given(
    temperature=_TEMPS,
    vg=st.floats(min_value=-0.3, max_value=0.9),
    vd=st.floats(min_value=-0.9, max_value=0.9),
)
def test_ids_drain_source_swap_antisymmetry(temperature, vg, vd):
    """Swapping drain and source negates the current.

    With the drain/source roles exchanged the terminal voltages become
    ``vgs' = vg - vd`` and ``vds' = -vd``, and the same physical
    current flows the other way: ``ids(vg, vd) = -ids(vg - vd, -vd)``.
    Exact equality cannot hold in floating point ((vg - vd) + vd loses
    a ULP), so the family is checked to a tight relative tolerance.
    """
    dev = CryoFinFET(default_nfet_5nm())
    fwd = dev.ids(vg, vd, temperature)
    swapped = dev.ids(vg - vd, -vd, temperature)
    tol = 1e-9 * max(abs(fwd), abs(swapped)) + 1e-21
    assert abs(fwd + swapped) <= tol


@settings(max_examples=50, deadline=None)
@given(temperature=_TEMPS, vds=st.floats(min_value=0.05, max_value=0.9))
def test_gm_nonnegative_above_threshold(temperature, vds):
    """Transconductance is non-negative for V_gs at/above threshold."""
    dev = CryoFinFET(default_nfet_5nm())
    vth = dev.threshold_voltage(temperature)
    vgs = np.linspace(vth, 0.9, 41)
    gm = np.asarray(dev.gm(vgs, np.full_like(vgs, vds), temperature))
    assert np.all(gm >= 0.0)


@settings(max_examples=40, deadline=None)
@given(temperature=st.floats(min_value=4.0, max_value=77.0))
def test_leakage_floor_never_freezes_out(temperature):
    """|I_off| stays at/above the GIDL/junction floor down to 4 K.

    The cryo literature's key deviation from pure thermionic scaling:
    off-state leakage saturates at a temperature-independent floor
    instead of freezing out exponentially.
    """
    for params in (default_nfet_5nm(), default_pfet_5nm()):
        dev = CryoFinFET(params)
        floor = params.ioff_floor_per_fin * params.nfin
        assert dev.off_current(0.7, temperature) >= 0.9 * floor
