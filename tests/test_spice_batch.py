"""Differential + property suite for the trajectory-batched kernel.

Locks the ``batch`` kernel down from three directions:

* **Differential**: batched waveforms must be *bitwise* identical to
  the per-instance vector kernel and ≤1e-9 from the scalar reference —
  across catalog cell arcs, all library test temperatures, and
  fault-injected (``spice.newton``) runs (where degraded-arc sets must
  also agree exactly).
* **Property**: any shuffle or partition of a grid into sub-batches
  yields bit-identical per-instance results (batch composition is
  semantically invisible).
* **Invariants**: converged trajectories are bit-frozen (their state
  rows never change after convergence) and the unconverged-instance
  mask is monotone non-increasing within every batched solve.

The module is ``no_chaos`` for the same reason the scalar≡vector suite
is: ambient fault injection would perturb the compared paths at
different points and the tests would measure the plan, not the kernel.
The fault-differential class installs its *own* deterministic plans.
"""

import numpy as np
import pytest

from repro import obs
from repro.charlib.spice_char import SpiceCharacterizer
from repro.device import CryoFinFET, default_nfet_5nm, default_pfet_5nm
from repro.pdk import catalog, cryo5_technology
from repro.resilience import faults
from repro.spice import (
    DC,
    BatchedSimulator,
    Circuit,
    Simulator,
    SimulatorSettings,
    TrajectorySpec,
    default_kernel,
    ramp,
)
from repro.spice.batch import _DONE, _FAIL

pytestmark = pytest.mark.no_chaos

VDD = 0.7
TEMPERATURES = (300.0, 77.0, 10.0)
RTOL = 1e-9

SCALAR = SimulatorSettings(kernel="scalar")
VECTOR = SimulatorSettings(kernel="vector")
BATCH = SimulatorSettings(kernel="batch")

TECH = cryo5_technology()

#: Representative catalog cells covering the families benchgen designs
#: map onto (inverter/buffer chains, NAND/NOR trees, AOI, XOR).
ARC_CELLS = (
    catalog.make_inv(1),
    catalog.make_nand(2, 1),
    catalog.make_nor(2, 1),
    catalog.make_aoi("21", 1),
    catalog.make_xor2(1),
)

ARC_FIELDS = (
    "cell_rise", "cell_fall", "rise_transition",
    "fall_transition", "rise_power", "fall_power",
)


def inverter_spec(slew: float, load: float, rising: bool, label: str = "") -> TrajectorySpec:
    """A charlib-shaped inverter arc transient as a TrajectorySpec."""
    cell = catalog.make_inv(1)
    circuit = cell.to_circuit(TECH, load_caps={"Y": load})
    t_edge = 5e-11
    full_ramp = slew / 0.6
    v0, v1 = (0.0, VDD) if rising else (VDD, 0.0)
    circuit.add_vsource("v_A", "A", "0", ramp(t_edge, full_ramp, v0, v1))
    t_stop = t_edge + full_ramp + 3e-10 + 200.0 * load
    dt = min(2e-12, full_ramp / 8.0)
    return TrajectorySpec(circuit, t_stop, dt, label=label or f"{slew!r}:{load!r}:{rising}")


def inverter_grid_specs() -> list[TrajectorySpec]:
    """A small slew x load x direction grid of inverter transients."""
    specs = []
    for slew in (5e-12, 2e-11):
        for load in (2e-15, 8e-15):
            for rising in (True, False):
                specs.append(inverter_spec(slew, load, rising))
    return specs


def rc_ladder_spec(scale: float) -> TrajectorySpec:
    """Linear-only trajectory: the FET batch is empty."""
    c = Circuit("rc")
    c.add_vsource("vin", "in", "0", ramp(1e-12, 5e-12, 0.0, 1.0))
    prev = "in"
    for i in range(4):
        node = f"n{i}"
        c.add_resistor(f"r{i}", prev, node, 1e3 * (i + 1))
        c.add_capacitor(f"c{i}", node, "0", 1e-13 * scale)
        prev = node
    c.add_resistor("rload", prev, "0", 5e3)
    return TrajectorySpec(c, 5e-11, 1e-12, label=f"rc{scale}")


def mixed_fet_specs() -> list[TrajectorySpec]:
    """Hand-built inverter variants with differing load/stimulus."""
    specs = []
    for k, (load, t_ramp) in enumerate([(1e-15, 2e-11), (4e-15, 1e-11), (2e-15, 3e-11)]):
        c = Circuit("inv")
        c.add_vsource("vdd", "vdd", "0", DC(VDD))
        c.add_vsource("vin", "a", "0", ramp(2e-11, t_ramp, 0.0, VDD))
        c.add_finfet("mp", "y", "a", "vdd", CryoFinFET(default_pfet_5nm(nfin=3)))
        c.add_finfet("mn", "y", "a", "0", CryoFinFET(default_nfet_5nm(nfin=2)))
        c.add_capacitor("cl", "y", "0", load)
        specs.append(TrajectorySpec(c, 1.2e-10, 2e-12, label=f"inv{k}"))
    return specs


def assert_results_bitwise(result_a, result_b, context=""):
    assert np.array_equal(result_a.time, result_b.time), context
    for node in result_a.voltages:
        assert np.array_equal(
            result_a.voltages[node], result_b.voltages[node]
        ), f"{context}: node {node}"
    for name in result_a.source_currents:
        assert np.array_equal(
            result_a.source_currents[name], result_b.source_currents[name]
        ), f"{context}: source {name}"


def assert_results_close(result_a, result_b, context=""):
    assert np.array_equal(result_a.time, result_b.time), context
    for node in result_a.voltages:
        np.testing.assert_allclose(
            result_a.voltages[node],
            result_b.voltages[node],
            rtol=RTOL,
            atol=RTOL * VDD,
            err_msg=f"{context}: node {node}",
        )


def serial_reference(specs, temperature_k, settings):
    """Per-instance serial transients through ``Simulator``."""
    return [
        Simulator(spec.circuit, temperature_k, settings=settings).transient(
            spec.t_stop, spec.dt, initial=spec.initial
        )
        for spec in specs
    ]


class TestWaveformDifferential:
    """Batched ≡ vector (bitwise) ≡ scalar (≤1e-9) waveforms."""

    @pytest.mark.parametrize("temperature", TEMPERATURES)
    def test_batch_matches_vector_bitwise_all_temperatures(self, temperature):
        specs = mixed_fet_specs()
        batched = BatchedSimulator(specs, temperature).transient_all()
        reference = serial_reference(specs, temperature, VECTOR)
        for spec, got, want in zip(specs, batched, reference):
            assert_results_bitwise(got, want, f"{spec.label}@{temperature}K")

    @pytest.mark.parametrize("temperature", TEMPERATURES)
    def test_batch_matches_scalar_all_temperatures(self, temperature):
        specs = mixed_fet_specs()
        batched = BatchedSimulator(specs, temperature).transient_all()
        reference = serial_reference(specs, temperature, SCALAR)
        for spec, got, want in zip(specs, batched, reference):
            assert_results_close(got, want, f"{spec.label}@{temperature}K")

    def test_linear_only_batch(self):
        """Zero-FET circuits take the empty-model-batch path."""
        specs = [rc_ladder_spec(s) for s in (0.5, 1.0, 2.0)]
        batched = BatchedSimulator(specs, 300.0).transient_all()
        for spec, got, want in zip(
            specs, batched, serial_reference(specs, 300.0, VECTOR)
        ):
            assert_results_bitwise(got, want, spec.label)
        for spec, got, want in zip(
            specs, batched, serial_reference(specs, 300.0, SCALAR)
        ):
            assert_results_close(got, want, spec.label)

    def test_heterogeneous_time_grids(self):
        """Instances with different horizons retire from the lockstep
        at different steps; late steps run with a shrinking batch."""
        specs = [
            inverter_spec(5e-12, 2e-15, True, "short"),
            inverter_spec(2e-11, 2e-14, False, "long"),
        ]
        batched = BatchedSimulator(specs, 77.0).transient_all()
        assert len(batched[0].time) != len(batched[1].time)
        for spec, got, want in zip(
            specs, batched, serial_reference(specs, 77.0, VECTOR)
        ):
            assert_results_bitwise(got, want, spec.label)


class TestArcTableDifferential:
    """Whole NLDM grids through the charlib backend, per catalog cell."""

    SLEWS = TECH.slew_grid[1::3]
    LOADS = TECH.load_grid[1::3]

    @pytest.mark.parametrize("cell", ARC_CELLS, ids=lambda c: c.name)
    def test_batch_tables_equal_vector_tables(self, cell):
        lib_b = SpiceCharacterizer(TECH, 77.0, settings=BATCH).characterize_cell(
            cell, self.SLEWS, self.LOADS
        )
        lib_v = SpiceCharacterizer(TECH, 77.0, settings=VECTOR).characterize_cell(
            cell, self.SLEWS, self.LOADS
        )
        assert lib_b.degraded_arcs == lib_v.degraded_arcs == ()
        assert len(lib_b.arcs) == len(lib_v.arcs)
        for arc_b, arc_v in zip(lib_b.arcs, lib_v.arcs):
            for field in ARC_FIELDS:
                assert getattr(arc_b, field) == getattr(arc_v, field), (
                    cell.name, arc_b.related_pin, field,
                )

    @pytest.mark.parametrize("temperature", TEMPERATURES)
    def test_batch_tables_equal_vector_tables_across_temperatures(self, temperature):
        cell = catalog.make_nand(2, 1)
        lib_b = SpiceCharacterizer(TECH, temperature, settings=BATCH).characterize_cell(
            cell, self.SLEWS, self.LOADS
        )
        lib_v = SpiceCharacterizer(TECH, temperature, settings=VECTOR).characterize_cell(
            cell, self.SLEWS, self.LOADS
        )
        for arc_b, arc_v in zip(lib_b.arcs, lib_v.arcs):
            for field in ARC_FIELDS:
                assert getattr(arc_b, field) == getattr(arc_v, field)

    def test_batch_tables_close_to_scalar_tables(self):
        cell = catalog.make_inv(1)
        lib_b = SpiceCharacterizer(TECH, 77.0, settings=BATCH).characterize_cell(
            cell, self.SLEWS, self.LOADS
        )
        lib_s = SpiceCharacterizer(TECH, 77.0, settings=SCALAR).characterize_cell(
            cell, self.SLEWS, self.LOADS
        )
        for arc_b, arc_s in zip(lib_b.arcs, lib_s.arcs):
            for field in ARC_FIELDS:
                np.testing.assert_allclose(
                    np.array(getattr(arc_b, field).values),
                    np.array(getattr(arc_s, field).values),
                    rtol=RTOL,
                    atol=1e-30,
                    err_msg=f"{arc_b.related_pin} {field}",
                )


class TestBatchComposition:
    """Randomized property: batch composition is invisible per instance."""

    def test_shuffles_and_partitions_yield_identical_results(self):
        specs = inverter_grid_specs()
        reference = {
            spec.label: result
            for spec, result in zip(
                specs, BatchedSimulator(specs, 77.0).transient_all()
            )
        }
        rng = np.random.default_rng(2023)
        for _trial in range(4):
            order = rng.permutation(len(specs))
            shuffled = [specs[i] for i in order]
            # Random partition of the shuffled grid into 1..n batches.
            n_parts = int(rng.integers(1, len(shuffled) + 1))
            bounds = sorted(
                rng.choice(np.arange(1, len(shuffled)), size=n_parts - 1, replace=False)
            ) if n_parts > 1 else []
            parts = np.split(np.arange(len(shuffled)), bounds)
            for part in parts:
                sub = [shuffled[int(i)] for i in part]
                for spec, result in zip(
                    sub, BatchedSimulator(sub, 77.0).transient_all()
                ):
                    assert_results_bitwise(
                        result, reference[spec.label], spec.label
                    )

    def test_singleton_batch_equals_full_batch(self):
        specs = inverter_grid_specs()[:3]
        full = BatchedSimulator(specs, 77.0).transient_all()
        for spec, want in zip(specs, full):
            got = BatchedSimulator([spec], 77.0).transient_all()[0]
            assert_results_bitwise(got, want, spec.label)


class TestConvergenceMasks:
    """Converged rows are bit-frozen; unconverged mask is monotone."""

    def _trace(self, plan_text=None):
        specs = mixed_fet_specs()
        sim = BatchedSimulator(specs, 77.0, record_masks=True)
        if plan_text is not None:
            with faults.injecting(faults.parse_plan(plan_text)):
                sim.transient_all()
        else:
            sim.transient_all()
        assert sim.mask_trace, "record_masks must capture Newton iterations"
        return sim.mask_trace

    def _check_invariants(self, trace):
        solves = {}
        for entry in trace:
            solves.setdefault(entry["solve"], []).append(entry)
        multi_iteration = 0
        for entries in solves.values():
            if len(entries) > 1:
                multi_iteration += 1
            previous = None
            for entry in entries:
                terminal = (entry["state"] == _DONE) | (entry["state"] == _FAIL)
                if previous is not None:
                    prev_terminal = (previous["state"] == _DONE) | (
                        previous["state"] == _FAIL
                    )
                    # Monotone: terminal states are absorbing, so the
                    # unconverged-instance mask never grows.
                    assert np.all(terminal[prev_terminal]), "terminal state reopened"
                    assert int(np.sum(~terminal)) <= int(np.sum(~prev_terminal))
                    # Bit-frozen: converged rows never change again.
                    done_rows = np.nonzero(previous["state"] == _DONE)[0]
                    for row in done_rows:
                        assert np.array_equal(
                            entry["x"][row], previous["x"][row]
                        ), "converged row mutated"
                previous = entry
        assert multi_iteration > 0, "expected at least one multi-iteration solve"

    def test_clean_run_invariants(self):
        self._check_invariants(self._trace())

    def test_faulted_run_invariants(self):
        """Ladder escalations re-open instances as *new attempts* but
        never resurrect converged/exhausted rows within a solve."""
        self._check_invariants(self._trace("seed=3;spice.newton:0.25:depth=2"))


class TestFaultDifferential:
    """Batch ≡ vector under deterministic spice.newton fault plans."""

    PLANS = (
        "seed=3;spice.newton:0.3:depth=2",       # heavy, ladder-recovered
        "seed=9;spice.newton:0.01:depth=3",      # sparse, deeper rungs
        "seed=5;spice.newton:first=1:depth=99",  # unrecoverable -> degraded
    )

    @pytest.mark.parametrize("plan_text", PLANS)
    def test_degraded_arcs_and_tables_match(self, plan_text):
        cell = catalog.make_nand(2, 1)
        slews = TECH.slew_grid[1::3]
        loads = TECH.load_grid[1::3]

        def run(settings):
            with faults.injecting(faults.parse_plan(plan_text)):
                return SpiceCharacterizer(
                    TECH, 77.0, settings=settings
                ).characterize_cell(cell, slews, loads)

        lib_b = run(BATCH)
        lib_v = run(VECTOR)
        assert lib_b.degraded_arcs == lib_v.degraded_arcs
        for arc_b, arc_v in zip(lib_b.arcs, lib_v.arcs):
            for field in ARC_FIELDS:
                assert getattr(arc_b, field) == getattr(arc_v, field), (
                    plan_text, arc_b.related_pin, field,
                )

    def test_forced_plan_actually_fires_and_degrades(self):
        cell = catalog.make_nand(2, 1)
        plan = faults.parse_plan("seed=5;spice.newton:first=1:depth=99")
        with faults.injecting(plan):
            lib = SpiceCharacterizer(TECH, 77.0, settings=BATCH).characterize_cell(
                cell, TECH.slew_grid[1::3], TECH.load_grid[1::3]
            )
        assert plan.fires().get("spice.newton", 0) > 0
        assert lib.degraded_arcs  # every arc's first instance exhausts

    def test_instance_scoped_streams_are_order_independent(self):
        """The per-instance fault streams that make batch ≡ serial."""
        plan_a = faults.parse_plan("seed=11;spice.newton:0.5")
        plan_b = faults.parse_plan("seed=11;spice.newton:0.5")
        labels = ["i0", "i1", "i2"]
        seq_a = {
            label: [plan_a.should_fire("spice.newton", instance=label) for _ in range(8)]
            for label in labels
        }
        seq_b = {label: [] for label in labels}
        for check in range(8):  # interleaved order
            for label in labels:
                seq_b[label].append(
                    plan_b.should_fire("spice.newton", instance=label)
                )
        assert seq_a == seq_b


class TestBatchMachinery:
    def test_topology_mismatch_rejected(self):
        specs = [mixed_fet_specs()[0], rc_ladder_spec(1.0)]
        with pytest.raises(ValueError, match="topology"):
            BatchedSimulator(specs, 300.0)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchedSimulator([], 300.0)

    def test_invalid_horizon_rejected(self):
        spec = rc_ladder_spec(1.0)
        bad = TrajectorySpec(spec.circuit, -1.0, spec.dt)
        with pytest.raises(ValueError):
            BatchedSimulator([bad], 300.0).transient_all()

    def test_counter_parity_with_serial_vector(self):
        """The batched run emits the exact per-instance solver effort
        the serial vector loop would: same transient step counts, same
        Newton solve/iteration totals."""
        specs = mixed_fet_specs()
        with obs.Tracer() as tracer_b:
            BatchedSimulator(specs, 77.0).transient_all()
        with obs.Tracer() as tracer_v:
            serial_reference(specs, 77.0, VECTOR)
        for counter in (
            "spice.transient.runs",
            "spice.transient.steps",
            "spice.transient.breakpoint_refinements",
            "spice.newton.solves",
            "spice.newton.iterations",
        ):
            assert tracer_b.counters.get(counter, 0) == tracer_v.counters.get(
                counter, 0
            ), counter
        assert tracer_b.counters.get("spice.kernel.batch", 0) == tracer_v.counters.get(
            "spice.kernel.vector", 0
        )
        assert tracer_b.counters["spice.batch.runs"] == 1
        assert tracer_b.counters["spice.batch.instances"] == len(specs)
        assert tracer_b.counters["spice.batch.lockstep_steps"] > 0
        assert (
            tracer_b.counters["spice.batch.instance_steps"]
            == tracer_v.counters["spice.transient.steps"]
        )


class TestDefaultKernelSelection:
    def test_batch_is_the_default_kernel(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert default_kernel() == "batch"
        assert SimulatorSettings().kernel == "batch"

    def test_characterizer_default_uses_batch(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        characterizer = SpiceCharacterizer(TECH, 77.0)
        assert characterizer.settings.kernel == "batch"

    def test_charlib_batch_counter(self):
        cell = catalog.make_inv(1)
        with obs.Tracer() as tracer:
            SpiceCharacterizer(TECH, 77.0, settings=BATCH).characterize_cell(
                cell, (5e-12,), (2e-15,)
            )
        assert tracer.counters.get("charlib.spice.kernel.batch", 0) == 2
        assert tracer.counters.get("spice.batch.runs", 0) == 1
        assert tracer.counters.get("spice.batch.instances", 0) == 2
