"""Tests for the nodal-analysis simulator against analytic solutions."""


import numpy as np
import pytest

from repro.device import CryoFinFET, default_nfet_5nm, default_pfet_5nm
from repro.spice import (
    DC,
    Circuit,
    Simulator,
    propagation_delay,
    ramp,
    supply_energy,
    transition_time,
)

VDD = 0.7


def make_inverter(nfin_p=3, nfin_n=2, load_f=1e-15):
    """CMOS inverter with a rising input ramp and explicit load."""
    c = Circuit("inv")
    c.add_vsource("vdd", "vdd", "0", DC(VDD))
    c.add_vsource("vin", "a", "0", ramp(2e-11, 2e-11, 0.0, VDD))
    c.add_finfet("mp", "y", "a", "vdd", CryoFinFET(default_pfet_5nm(nfin=nfin_p)))
    c.add_finfet("mn", "y", "a", "0", CryoFinFET(default_nfet_5nm(nfin=nfin_n)))
    c.add_capacitor("cl", "y", "0", load_f)
    return c


class TestNetlist:
    def test_duplicate_names_rejected(self):
        c = Circuit()
        c.add_resistor("r1", "a", "0", 1e3)
        with pytest.raises(ValueError):
            c.add_resistor("r1", "b", "0", 1e3)

    def test_nonpositive_values_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.add_resistor("r", "a", "0", 0.0)
        with pytest.raises(ValueError):
            c.add_capacitor("c", "a", "0", -1e-15)

    def test_nodes_exclude_ground(self):
        c = Circuit()
        c.add_resistor("r1", "a", "b", 1e3)
        c.add_resistor("r2", "b", "0", 1e3)
        assert set(c.nodes()) == {"a", "b"}

    def test_float_vsource_becomes_dc(self):
        c = Circuit()
        src = c.add_vsource("v1", "a", "0", 1.5)
        assert src.waveform(123.0) == 1.5

    def test_len_counts_elements(self):
        c = make_inverter()
        assert len(c) == 5


class TestDCAnalysis:
    def test_resistive_divider(self):
        c = Circuit()
        c.add_vsource("v1", "in", "0", DC(1.0))
        c.add_resistor("r1", "in", "mid", 1e3)
        c.add_resistor("r2", "mid", "0", 3e3)
        op = Simulator(c).dc_operating_point()
        assert op["mid"] == pytest.approx(0.75, rel=1e-6)
        assert op["in"] == pytest.approx(1.0)

    def test_source_current_sign(self):
        c = Circuit()
        c.add_vsource("v1", "in", "0", DC(1.0))
        c.add_resistor("r1", "in", "0", 1e3)
        op = Simulator(c).dc_operating_point()
        # 1 mA flows out of the + terminal -> branch current is -1 mA.
        assert op.source_currents["v1"] == pytest.approx(-1e-3, rel=1e-6)

    def test_ground_lookup(self):
        c = Circuit()
        c.add_vsource("v1", "in", "0", DC(1.0))
        c.add_resistor("r1", "in", "0", 1e3)
        op = Simulator(c).dc_operating_point()
        assert op["0"] == 0.0

    def test_inverter_logic_levels(self):
        c = Circuit()
        c.add_vsource("vdd", "vdd", "0", DC(VDD))
        c.add_vsource("vin", "a", "0", DC(0.0))
        c.add_finfet("mp", "y", "a", "vdd", CryoFinFET(default_pfet_5nm()))
        c.add_finfet("mn", "y", "a", "0", CryoFinFET(default_nfet_5nm()))
        op = Simulator(c).dc_operating_point()
        assert op["y"] == pytest.approx(VDD, abs=0.01)

    def test_inverter_vtc_monotone_falling(self):
        c = Circuit()
        c.add_vsource("vdd", "vdd", "0", DC(VDD))
        c.add_vsource("vin", "a", "0", DC(0.0))
        c.add_finfet("mp", "y", "a", "vdd", CryoFinFET(default_pfet_5nm()))
        c.add_finfet("mn", "y", "a", "0", CryoFinFET(default_nfet_5nm()))
        sweep = Simulator(c).dc_sweep("vin", np.linspace(0.0, VDD, 15))
        outputs = [op["y"] for op in sweep]
        assert outputs[0] > VDD - 0.02
        assert outputs[-1] < 0.02
        assert all(b <= a + 1e-6 for a, b in zip(outputs, outputs[1:]))

    def test_dc_sweep_unknown_source(self):
        c = Circuit()
        c.add_vsource("v1", "a", "0", DC(1.0))
        c.add_resistor("r1", "a", "0", 1e3)
        with pytest.raises(KeyError):
            Simulator(c).dc_sweep("nope", np.array([0.0]))

    def test_dc_sweep_restores_source(self):
        c = Circuit()
        c.add_vsource("v1", "a", "0", DC(1.0))
        c.add_resistor("r1", "a", "0", 1e3)
        Simulator(c).dc_sweep("v1", np.array([0.0, 0.5]))
        assert c.vsources[0].waveform(0.0) == 1.0


class TestTransient:
    def test_rc_step_response(self):
        c = Circuit()
        c.add_vsource("vin", "in", "0", ramp(1e-12, 1e-12, 0.0, 1.0))
        c.add_resistor("r1", "in", "out", 1e3)
        c.add_capacitor("c1", "out", "0", 1e-12)
        res = Simulator(c).transient(t_stop=5e-9, dt=2e-11)
        # Analytic: v(t) = 1 - exp(-t/tau), tau = 1 ns.
        tau = 1e-9
        t_off = 2e-12  # stimulus midpoint
        expected = 1.0 - np.exp(-np.maximum(res.time - t_off, 0.0) / tau)
        mask = res.time > 1e-10
        err = np.abs(res.voltage("out") - expected)[mask]
        assert np.max(err) < 0.01

    def test_rc_divider_final_value(self):
        c = Circuit()
        c.add_vsource("vin", "in", "0", ramp(1e-12, 1e-12, 0.0, 1.0))
        c.add_resistor("r1", "in", "out", 1e3)
        c.add_resistor("r2", "out", "0", 1e3)
        c.add_capacitor("c1", "out", "0", 1e-12)
        res = Simulator(c).transient(t_stop=6e-9, dt=2e-11)
        assert res.voltage("out")[-1] == pytest.approx(0.5, abs=0.005)

    def test_capacitor_charge_conservation(self):
        # Energy delivered by the source into an RC equals C*V^2
        # (half stored, half dissipated).
        c = Circuit()
        c.add_vsource("vin", "in", "0", ramp(1e-12, 1e-12, 0.0, 1.0))
        c.add_resistor("r1", "in", "out", 1e3)
        c.add_capacitor("c1", "out", "0", 1e-12)
        res = Simulator(c).transient(t_stop=10e-9, dt=1e-11)
        energy = supply_energy(res, "vin", 1.0)
        assert energy == pytest.approx(1e-12 * 1.0**2, rel=0.03)

    def test_rejects_bad_timing(self):
        c = Circuit()
        c.add_vsource("v", "a", "0", DC(1.0))
        c.add_resistor("r", "a", "0", 1.0)
        with pytest.raises(ValueError):
            Simulator(c).transient(t_stop=0.0, dt=1e-12)
        with pytest.raises(ValueError):
            Simulator(c).transient(t_stop=1e-9, dt=-1.0)


class TestStepAccounting:
    """Pins the transient loop's step/solve bookkeeping.

    The inner loop used to re-bind a ``v_of`` closure on every
    ``_advance_step`` call; it is now the module-level ``_v_of`` and the
    time grid comes from ``build_time_grid``.  These tests pin the
    observable contract of that refactor: identical grids and identical
    per-step Newton effort across kernels.
    """

    def _counters(self, kernel):
        from repro import obs
        from repro.spice import SimulatorSettings

        with obs.Tracer() as tracer:
            result = Simulator(
                make_inverter(), 300.0, settings=SimulatorSettings(kernel=kernel)
            ).transient(t_stop=2e-10, dt=2e-12)
        return result, tracer.counters

    def test_step_count_matches_time_grid(self):
        from repro.spice.engine import build_time_grid

        result, counters = self._counters("vector")
        times, _ = build_time_grid(make_inverter(), 2e-10, 2e-12)
        steps = counters["spice.transient.steps"]
        assert steps == len(result.time) - 1
        assert steps >= len(times) - 1  # breakpoint refinement only adds
        # One Newton solve for the DC point plus one per accepted step
        # (clean run: no time-step halving on this stimulus).
        assert counters["spice.newton.solves"] == steps + 1

    def test_step_count_parity_across_kernels(self):
        result_s, counters_s = self._counters("scalar")
        result_v, counters_v = self._counters("vector")
        assert len(result_s.time) == len(result_v.time)
        for name in (
            "spice.transient.steps",
            "spice.transient.breakpoint_refinements",
            "spice.newton.solves",
            "spice.newton.iterations",
        ):
            assert counters_s.get(name, 0) == counters_v.get(name, 0), name


class TestInverterTransient:
    @pytest.fixture(scope="class")
    def result(self):
        return Simulator(make_inverter(), temperature_k=300.0).transient(
            t_stop=3e-10, dt=1e-12
        )

    def test_output_falls(self, result):
        assert result.voltage("y")[0] == pytest.approx(VDD, abs=0.01)
        assert result.voltage("y")[-1] == pytest.approx(0.0, abs=0.01)

    def test_delay_in_picosecond_range(self, result):
        d = propagation_delay(result, "a", "y", VDD, input_rising=True)
        assert 1e-13 < d < 1e-10

    def test_output_slew_positive(self, result):
        s = transition_time(result, "y", VDD, rising=False, after=2e-11)
        assert 1e-13 < s < 1e-10

    def test_more_load_means_more_delay(self):
        small = Simulator(make_inverter(load_f=0.5e-15)).transient(3e-10, 1e-12)
        large = Simulator(make_inverter(load_f=4e-15)).transient(6e-10, 1e-12)
        d_small = propagation_delay(small, "a", "y", VDD, input_rising=True)
        d_large = propagation_delay(large, "a", "y", VDD, input_rising=True)
        assert d_large > 1.5 * d_small

    def test_cryo_delay_close_to_room_temperature(self):
        # Fig. 2(a): cell delay barely changes at 10 K because I_on is
        # nearly temperature independent.
        warm = Simulator(make_inverter(), temperature_k=300.0).transient(3e-10, 1e-12)
        cold = Simulator(make_inverter(), temperature_k=10.0).transient(3e-10, 1e-12)
        d_warm = propagation_delay(warm, "a", "y", VDD, input_rising=True)
        d_cold = propagation_delay(cold, "a", "y", VDD, input_rising=True)
        assert abs(d_cold / d_warm - 1.0) < 0.35

    def test_rising_output_energy_about_cv2(self):
        # Falling input -> PMOS charges the load: supply energy is
        # close to C_total * VDD^2.
        c = Circuit("inv_fall")
        c.add_vsource("vdd", "vdd", "0", DC(VDD))
        c.add_vsource("vin", "a", "0", ramp(2e-11, 2e-11, VDD, 0.0))
        c.add_finfet("mp", "y", "a", "vdd", CryoFinFET(default_pfet_5nm(nfin=3)))
        c.add_finfet("mn", "y", "a", "0", CryoFinFET(default_nfet_5nm(nfin=2)))
        c.add_capacitor("cl", "y", "0", 2e-15)
        res = Simulator(c).transient(t_stop=4e-10, dt=1e-12)
        energy = supply_energy(res, "vdd", VDD)
        lower = 2e-15 * VDD**2  # at least the explicit load
        assert energy > 0.8 * lower
        assert energy < 6.0 * lower  # plus bounded parasitics
