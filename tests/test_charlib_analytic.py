"""Tests for the analytic characterization backend."""

import numpy as np
import pytest

from repro.charlib import AnalyticCharacterizer, characterize_library
from repro.pdk import cryo5_technology
from repro.pdk.catalog import (
    make_aoi,
    make_buf,
    make_dff,
    make_inv,
    make_nand,
    make_nor,
    make_xor2,
)

TECH = cryo5_technology()


@pytest.fixture(scope="module")
def char300():
    return AnalyticCharacterizer(TECH, 300.0)


@pytest.fixture(scope="module")
def char10():
    return AnalyticCharacterizer(TECH, 10.0)


class TestPrimitives:
    def test_resistance_scales_inverse_with_fins(self, char300):
        assert char300.resistance_n(4) == pytest.approx(char300.resistance_n(1) / 4)

    def test_pullup_weaker_than_pulldown_per_fin(self, char300):
        assert char300.resistance_p(1) > char300.resistance_n(1)

    def test_stack_penalty_meaningful_at_room_temperature(self, char300):
        # Classic stack effect: roughly an order of magnitude per
        # additional off device at room temperature.
        assert 2.0 < char300._stack_penalty["n"] < 50.0

    def test_stack_penalty_collapses_at_cryo(self, char10):
        # At 10 K the off current is floor-limited: stacking cannot
        # reduce it further.
        assert char10._stack_penalty["n"] == pytest.approx(1.0, abs=0.5)

    def test_input_capacitance_positive_and_scales(self, char300):
        c1 = char300.input_capacitance(make_inv(1), "A")
        c4 = char300.input_capacitance(make_inv(4), "A")
        assert c1 > 0.0
        assert c4 > 2.0 * c1


class TestArcSense:
    def test_inverter_negative_unate(self, char300):
        cell = char300.characterize_cell(make_inv(1))
        assert cell.arcs[0].timing_sense == "negative_unate"

    def test_buffer_positive_unate(self, char300):
        cell = char300.characterize_cell(make_buf(2))
        assert cell.arcs[0].timing_sense == "positive_unate"

    def test_xor_non_unate(self, char300):
        cell = char300.characterize_cell(make_xor2(1))
        assert all(arc.timing_sense == "non_unate" for arc in cell.arcs)

    def test_nand_all_pins_have_arcs(self, char300):
        cell = char300.characterize_cell(make_nand(3, 1))
        assert {arc.related_pin for arc in cell.arcs} == {"A", "B", "C"}


class TestDelayModel:
    def test_delay_increases_with_load(self, char300):
        cell = char300.characterize_cell(make_inv(1))
        arc = cell.arcs[0]
        d_light = arc.cell_rise.lookup(4e-12, 1e-15)
        d_heavy = arc.cell_rise.lookup(4e-12, 2e-14)
        assert d_heavy > 2.0 * d_light

    def test_delay_increases_with_input_slew(self, char300):
        cell = char300.characterize_cell(make_inv(1))
        arc = cell.arcs[0]
        assert arc.cell_rise.lookup(1e-10, 2e-15) > arc.cell_rise.lookup(2e-12, 2e-15)

    def test_stronger_drive_is_faster(self, char300):
        weak = char300.characterize_cell(make_inv(1)).arcs[0]
        strong = char300.characterize_cell(make_inv(8)).arcs[0]
        load = 1e-14
        assert strong.cell_rise.lookup(4e-12, load) < 0.5 * weak.cell_rise.lookup(4e-12, load)

    def test_multi_stage_slower_than_single(self, char300):
        inv = char300.characterize_cell(make_inv(2)).arcs[0]
        buf = char300.characterize_cell(make_buf(2)).arcs[0]
        assert buf.cell_rise.lookup(4e-12, 2e-15) > inv.cell_rise.lookup(4e-12, 2e-15)

    @pytest.mark.no_chaos  # raw backend output, before engine sanitization
    def test_all_tables_positive(self, char300):
        for cell_maker in (make_nand(2, 1), make_nor(2, 1), make_aoi("22", 1)):
            cell = char300.characterize_cell(cell_maker)
            for arc in cell.arcs:
                assert arc.cell_rise.min_value() > 0.0
                assert arc.rise_transition.min_value() > 0.0
                assert arc.rise_power.min_value() >= 0.0


class TestLeakage:
    def test_room_temperature_leakage_nanowatt_class(self, char300):
        cell = char300.characterize_cell(make_inv(1))
        assert 1e-10 < cell.leakage_average < 1e-6

    def test_cryo_leakage_orders_of_magnitude_lower(self, char300, char10):
        warm = char300.characterize_cell(make_nand(2, 1))
        cold = char10.characterize_cell(make_nand(2, 1))
        assert cold.leakage_average < 1e-4 * warm.leakage_average

    def test_leakage_state_dependence(self, char300):
        # NAND2 leaks least when both inputs are low (stacked off nfets).
        cell = char300.characterize_cell(make_nand(2, 1))
        both_low = cell.leakage_by_state["A=0 B=0"]
        both_high = cell.leakage_by_state["A=1 B=1"]
        assert both_low < both_high

    def test_state_count(self, char300):
        cell = char300.characterize_cell(make_nand(3, 1))
        assert len(cell.leakage_by_state) == 8


class TestCryogenicFigureTrends:
    """Cell-level preconditions for Fig. 2(a, b)."""

    def test_delay_nearly_unchanged_at_cryo(self, char300, char10):
        for template in (make_inv(1), make_nand(2, 1), make_nor(2, 1)):
            warm = char300.characterize_cell(template)
            cold = char10.characterize_cell(template)
            ratio = cold.typical_delay() / warm.typical_delay()
            assert 0.8 < ratio < 1.2, template.name

    def test_energy_slightly_lower_at_cryo(self, char300, char10):
        warm = char300.characterize_cell(make_nand(2, 1))
        cold = char10.characterize_cell(make_nand(2, 1))
        ratio = cold.typical_energy() / warm.typical_energy()
        assert 0.85 < ratio < 1.0


class TestSequentialCells:
    def test_dff_has_clock_arc(self, char300):
        cell = char300.characterize_cell(make_dff(1))
        assert cell.is_sequential
        arcs = [a for a in cell.arcs if a.timing_type == "rising_edge"]
        assert len(arcs) == 1
        assert arcs[0].related_pin == "CLK"
        assert arcs[0].cell_rise.min_value() > 0.0


class TestLibraryAssembly:
    def test_characterize_subset(self):
        lib = characterize_library(TECH, 300.0, cells=[make_inv(1), make_nand(2, 1)])
        assert len(lib) == 2
        assert "INVx1" in lib

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            characterize_library(TECH, 300.0, cells=[make_inv(1)], backend="magic")

    def test_full_catalog_characterizes(self):
        lib = characterize_library(TECH, 300.0)
        assert len(lib) == 200
        delays = lib.delay_distribution()
        assert len(delays) == 200
        assert np.all(delays > 0.0)

    def test_distributions_have_spread(self):
        lib = characterize_library(TECH, 300.0)
        delays = lib.delay_distribution()
        # Strong drives vs weak multi-stage cells: a real library has
        # a wide delay distribution.
        assert delays.max() > 3.0 * delays.min()
