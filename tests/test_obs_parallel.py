"""Parallel fan-out: determinism and span propagation into workers."""

import pytest

from repro import obs
from repro.benchgen import build_circuit
from repro.charlib import default_library
from repro.core import ArtifactCache, DesignContext, run_scenarios
from repro.core.experiments import (
    figure2ab_cell_distributions,
    figure2c_power_breakdown,
)


class TestParallelMap:
    def test_serial_path_is_plain_map(self):
        assert obs.parallel_map(lambda x: x * 2, [1, 2, 3], jobs=1) == [2, 4, 6]

    def test_results_in_input_order(self):
        import time

        def slow_if_small(x):
            time.sleep(0.01 * (3 - x))
            return x * 10

        assert obs.parallel_map(slow_if_small, [0, 1, 2, 3], jobs=4) == [0, 10, 20, 30]

    def test_worker_exception_propagates(self):
        def boom(x):
            if x == 2:
                raise RuntimeError("task 2 failed")
            return x

        with pytest.raises(RuntimeError, match="task 2 failed"):
            obs.parallel_map(boom, [1, 2, 3], jobs=3)

    def test_effective_jobs(self):
        assert obs.effective_jobs(None) == 1
        assert obs.effective_jobs(0) == 1
        assert obs.effective_jobs(4) == 4

    def test_spans_survive_workers(self):
        def work(name):
            with obs.span(f"task.{name}"):
                obs.count("tasks.done")
            return name

        with obs.Tracer() as tracer:
            with obs.span("fanout"):
                obs.parallel_map(work, ["a", "b", "c"], jobs=3)
        names = {s.name for s in tracer.spans}
        assert {"task.a", "task.b", "task.c", "fanout"} <= names
        fanout = next(s for s in tracer.spans if s.name == "fanout")
        for child in tracer.spans:
            if child.name.startswith("task."):
                assert child.parent_id == fanout.span_id
        assert tracer.counters["tasks.done"] == 3


class TestParallelDeterminism:
    def test_run_scenarios_jobs_invariant(self):
        aig = build_circuit("ctrl", "small")
        library = default_library(10.0)
        serial_ctx = DesignContext.from_library(library, cache=ArtifactCache())
        parallel_ctx = DesignContext.from_library(library, cache=ArtifactCache())
        serial = run_scenarios(aig, context=serial_ctx, vectors=64, jobs=1)
        threaded = run_scenarios(aig, context=parallel_ctx, vectors=64, jobs=4)
        assert sorted(serial) == sorted(threaded)
        for scenario in serial:
            assert serial[scenario].to_dict() == threaded[scenario].to_dict()

    def test_figure2ab_jobs_invariant(self):
        serial = figure2ab_cell_distributions(temperatures=(300.0, 10.0), jobs=1)
        threaded = figure2ab_cell_distributions(temperatures=(300.0, 10.0), jobs=4)
        assert serial == threaded

    def test_figure2c_jobs_invariant(self):
        kwargs = dict(circuits=["ctrl"], preset="small", vectors=64)
        serial = figure2c_power_breakdown(jobs=1, **kwargs)
        threaded = figure2c_power_breakdown(jobs=4, **kwargs)
        assert serial == threaded
