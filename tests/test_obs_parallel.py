"""Parallel fan-out: determinism and span propagation into workers."""

import pytest

from repro import obs
from repro.benchgen import build_circuit
from repro.charlib import default_library
from repro.core import ArtifactCache, DesignContext, run_scenarios
from repro.core.experiments import (
    figure2ab_cell_distributions,
    figure2c_power_breakdown,
)


class TestParallelMap:
    def test_serial_path_is_plain_map(self):
        assert obs.parallel_map(lambda x: x * 2, [1, 2, 3], jobs=1) == [2, 4, 6]

    def test_results_in_input_order(self):
        import time

        def slow_if_small(x):
            time.sleep(0.01 * (3 - x))
            return x * 10

        assert obs.parallel_map(slow_if_small, [0, 1, 2, 3], jobs=4) == [0, 10, 20, 30]

    def test_worker_exception_propagates(self):
        def boom(x):
            if x == 2:
                raise RuntimeError("task 2 failed")
            return x

        with pytest.raises(RuntimeError, match="task 2 failed"):
            obs.parallel_map(boom, [1, 2, 3], jobs=3)

    def test_effective_jobs(self):
        assert obs.effective_jobs(None) == 1
        assert obs.effective_jobs(0) == 1
        assert obs.effective_jobs(4) == 4

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError):
            obs.parallel_map(lambda x: x, [1], on_error="retry")


class TestFailureSemantics:
    @staticmethod
    def _boom(x):
        if x % 2:
            raise RuntimeError(f"task {x} failed")
        return x * 10

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_exception_annotated_with_index_and_label(self, jobs):
        with pytest.raises(RuntimeError) as info:
            obs.parallel_map(self._boom, [0, 1, 2], jobs=jobs)
        assert info.value.task_index == 1
        assert info.value.task_label == "_boom[1]"

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_label_sequence_and_callable(self, jobs):
        with pytest.raises(RuntimeError) as info:
            obs.parallel_map(
                self._boom, [0, 1], jobs=jobs, labels=["even", "odd"]
            )
        assert info.value.task_label == "odd"
        with pytest.raises(RuntimeError) as info:
            obs.parallel_map(
                self._boom, [0, 1], jobs=jobs, labels=lambda x: f"item-{x}"
            )
        assert info.value.task_label == "item-1"

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_collect_policy_aggregates_all_failures(self, jobs):
        from repro.resilience import ParallelExecutionError

        with pytest.raises(ParallelExecutionError) as info:
            obs.parallel_map(self._boom, [0, 1, 2, 3], jobs=jobs, on_error="collect")
        agg = info.value
        assert [index for index, _, _ in agg.errors] == [1, 3]
        assert all(isinstance(e, RuntimeError) for _, _, e in agg.errors)

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_task_failed_counter(self, jobs):
        with obs.Tracer() as tracer:
            with pytest.raises(RuntimeError):
                obs.parallel_map(self._boom, [0, 1], jobs=jobs)
        assert tracer.counters["parallel.task_failed"] == 1

    def test_fail_fast_drains_running_siblings(self):
        """fail_fast shuts the pool down with wait=True: started tasks
        run to completion, so no worker is abandoned mid-task."""
        import threading

        started = threading.Event()
        finished = []

        def task(x):
            if x == 0:
                started.wait(2.0)
                raise RuntimeError("fast failure")
            started.set()
            import time

            time.sleep(0.05)
            finished.append(x)
            return x

        with pytest.raises(RuntimeError):
            obs.parallel_map(task, [0, 1], jobs=2)
        assert finished == [1]

    def test_timeout_raises_timeout_exceeded(self):
        import time

        from repro.resilience import TimeoutExceeded

        def slow(x):
            time.sleep(x)
            return x

        with obs.Tracer() as tracer:
            with pytest.raises(TimeoutExceeded) as info:
                obs.parallel_map(slow, [0.0, 5.0], jobs=2, timeout_s=0.1)
        assert info.value.timeout_s == 0.1
        assert tracer.counters["parallel.timeout"] == 1

    def test_injected_worker_fault(self):
        from repro.resilience import (
            FaultPlan,
            FaultSpec,
            InjectedFaultError,
            injecting,
        )

        plan = FaultPlan([FaultSpec("parallel.worker", first_n=1)])
        with injecting(plan):
            with pytest.raises(InjectedFaultError) as info:
                obs.parallel_map(lambda x: x, [1, 2, 3], jobs=3)
        assert info.value.task_index == 0

    def test_injected_fault_with_collect_still_returns_siblings(self):
        from repro.resilience import (
            FaultPlan,
            FaultSpec,
            ParallelExecutionError,
            injecting,
        )

        plan = FaultPlan([FaultSpec("parallel.worker", first_n=1)])
        with injecting(plan):
            with pytest.raises(ParallelExecutionError) as info:
                obs.parallel_map(lambda x: x * 2, [1, 2, 3], jobs=3, on_error="collect")
        assert len(info.value.errors) == 1

    def test_spans_survive_workers(self):
        def work(name):
            with obs.span(f"task.{name}"):
                obs.count("tasks.done")
            return name

        with obs.Tracer() as tracer:
            with obs.span("fanout"):
                obs.parallel_map(work, ["a", "b", "c"], jobs=3)
        names = {s.name for s in tracer.spans}
        assert {"task.a", "task.b", "task.c", "fanout"} <= names
        fanout = next(s for s in tracer.spans if s.name == "fanout")
        for child in tracer.spans:
            if child.name.startswith("task."):
                assert child.parent_id == fanout.span_id
        assert tracer.counters["tasks.done"] == 3


# Serial-vs-threaded equality counts on identical site-check sequences;
# ambient injection assigns fire counters by worker interleaving instead.
@pytest.mark.no_chaos
class TestParallelDeterminism:
    def test_run_scenarios_jobs_invariant(self):
        aig = build_circuit("ctrl", "small")
        library = default_library(10.0)
        serial_ctx = DesignContext.from_library(library, cache=ArtifactCache())
        parallel_ctx = DesignContext.from_library(library, cache=ArtifactCache())
        serial = run_scenarios(aig, context=serial_ctx, vectors=64, jobs=1)
        threaded = run_scenarios(aig, context=parallel_ctx, vectors=64, jobs=4)
        assert sorted(serial) == sorted(threaded)
        for scenario in serial:
            assert serial[scenario].to_dict() == threaded[scenario].to_dict()

    def test_figure2ab_jobs_invariant(self):
        serial = figure2ab_cell_distributions(temperatures=(300.0, 10.0), jobs=1)
        threaded = figure2ab_cell_distributions(temperatures=(300.0, 10.0), jobs=4)
        assert serial == threaded

    def test_figure2c_jobs_invariant(self):
        kwargs = dict(circuits=["ctrl"], preset="small", vectors=64)
        serial = figure2c_power_breakdown(jobs=1, **kwargs)
        threaded = figure2c_power_breakdown(jobs=4, **kwargs)
        assert serial == threaded
