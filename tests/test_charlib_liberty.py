"""Tests for the liberty writer/parser and function-string parser."""

import numpy as np
import pytest

from repro.charlib import (
    characterize_library,
    parse_function,
    parse_liberty,
    write_liberty,
)
from repro.pdk import cryo5_technology, truth_table
from repro.pdk.catalog import make_dff, make_inv, make_mux2, make_nand, make_xor2

TECH = cryo5_technology()


@pytest.fixture(scope="module")
def library():
    return characterize_library(
        TECH, 10.0, cells=[make_inv(1), make_nand(2, 1), make_xor2(1), make_mux2(1), make_dff(1)]
    )


@pytest.fixture(scope="module")
def round_tripped(library):
    return parse_liberty(write_liberty(library))


class TestWriter:
    def test_header_units(self, library):
        text = write_liberty(library)
        assert 'time_unit : "1ns";' in text
        assert "capacitive_load_unit (1, pf);" in text
        assert 'leakage_power_unit : "1nW";' in text

    def test_temperature_recorded(self, library):
        assert "nom_temperature : 10;" in write_liberty(library)

    def test_every_cell_present(self, library):
        text = write_liberty(library)
        for name in library.cells:
            assert f"cell ({name})" in text

    def test_function_strings_emitted(self, library):
        text = write_liberty(library)
        assert 'function : "(!A)"' in text

    def test_sequential_ff_group(self, library):
        text = write_liberty(library)
        assert "ff (IQ, IQN)" in text
        assert 'clocked_on : "CLK"' in text


class TestRoundTrip:
    def test_cells_survive(self, library, round_tripped):
        assert set(round_tripped.cells) == set(library.cells)

    def test_corner_survives(self, library, round_tripped):
        assert round_tripped.temperature == pytest.approx(library.temperature)
        assert round_tripped.vdd == pytest.approx(library.vdd)

    def test_areas_survive(self, library, round_tripped):
        for name, cell in library.cells.items():
            assert round_tripped[name].area == pytest.approx(cell.area, rel=1e-4)

    def test_input_caps_survive(self, library, round_tripped):
        for name, cell in library.cells.items():
            for pin, cap in cell.input_caps.items():
                assert round_tripped[name].input_caps[pin] == pytest.approx(cap, rel=1e-3)

    def test_delay_tables_survive(self, library, round_tripped):
        for name, cell in library.cells.items():
            for arc, arc2 in zip(cell.arcs, round_tripped[name].arcs):
                assert arc2.related_pin == arc.related_pin
                assert arc2.timing_sense == arc.timing_sense
                assert np.allclose(arc2.cell_rise.values, arc.cell_rise.values, rtol=1e-4)
                assert np.allclose(
                    arc2.fall_transition.values, arc.fall_transition.values, rtol=1e-4
                )

    def test_power_tables_survive(self, library, round_tripped):
        for name, cell in library.cells.items():
            for arc, arc2 in zip(cell.arcs, round_tripped[name].arcs):
                assert np.allclose(arc2.rise_power.values, arc.rise_power.values, rtol=1e-4)

    def test_leakage_states_survive(self, library, round_tripped):
        cell = library["NAND2x1"]
        cell2 = round_tripped["NAND2x1"]
        for state, value in cell.leakage_by_state.items():
            assert cell2.leakage_by_state[state] == pytest.approx(value, rel=1e-3)

    def test_truth_tables_rebuilt_from_functions(self, round_tripped):
        assert round_tripped["NAND2x1"].truth_tables["Y"] == 0b0111
        assert round_tripped["XOR2x1"].truth_tables["Y"] == 0b0110

    def test_sequential_flags_survive(self, round_tripped):
        dff = round_tripped["DFFx1"]
        assert dff.is_sequential
        assert dff.clock_pin == "CLK"
        assert dff.arcs[0].timing_type == "rising_edge"

    def test_double_round_trip_stable(self, round_tripped):
        text1 = write_liberty(round_tripped)
        again = parse_liberty(text1)
        assert write_liberty(again) == text1


class TestParserRobustness:
    def test_rejects_non_liberty(self):
        with pytest.raises(ValueError):
            parse_liberty("module foo; endmodule")

    def test_tolerates_comments(self, library):
        text = write_liberty(library)
        text = "/* tool: repro */\n" + text
        parsed = parse_liberty(text)
        assert len(parsed) == len(library)


class TestFunctionParser:
    @pytest.mark.parametrize(
        "text,inputs,expected",
        [
            ("A&B", ["A", "B"], 0b1000),
            ("A|B", ["A", "B"], 0b1110),
            ("!A", ["A"], 0b01),
            ("(!((A&B)|C))", ["A", "B", "C"], 0b00000111 ^ 0b0),
            ("A'", ["A"], 0b01),
            ("A*B+C", ["A", "B", "C"], None),
        ],
    )
    def test_parse_matches_truth_table(self, text, inputs, expected):
        expr = parse_function(text)
        table = truth_table(expr, inputs)
        if expected is not None:
            assert table == expected
        else:
            # A*B+C == (A&B)|C
            assert table == truth_table(parse_function("(A&B)|C"), inputs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_function("")

    def test_unbalanced_rejected(self):
        with pytest.raises(ValueError):
            parse_function("(A&B")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_function("A B")
