"""Tests for the content-addressed artifact cache layer."""

import pytest

from repro.benchgen import build_circuit
from repro.charlib import characterize_library, default_library, write_liberty
from repro.core import (
    ArtifactCache,
    DesignContext,
    cache_key,
    config_digest,
    default_cache,
    run_scenarios,
    set_default_cache,
    using_cache,
)
from repro.mapping.cost import p_a_d, p_d_a
from repro.pdk import cryo5_technology
from repro.sta.timing import SignoffConfig


@pytest.fixture(scope="module")
def library():
    return default_library(10.0)


class TestDigests:
    def test_plain_values_stable(self):
        assert config_digest((1, "a", 2.5)) == config_digest((1, "a", 2.5))
        assert config_digest((1, "a")) != config_digest((1, "b"))

    def test_type_tagged(self):
        # 1 and 1.0 and "1" must not collide.
        assert config_digest(1) != config_digest(1.0)
        assert config_digest(1) != config_digest("1")

    def test_dict_order_independent(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})

    def test_dataclass_digest(self):
        assert config_digest(SignoffConfig()) == config_digest(SignoffConfig())
        assert config_digest(SignoffConfig()) != config_digest(
            SignoffConfig(input_slew=2e-11)
        )
        assert config_digest(p_a_d()) != config_digest(p_d_a())

    def test_rejects_opaque_objects(self):
        with pytest.raises(TypeError):
            config_digest(object())


class TestStructuralHash:
    def test_stable_and_content_addressed(self):
        a = build_circuit("ctrl", "small")
        b = build_circuit("ctrl", "small")
        assert a.structural_hash() == b.structural_hash()

    def test_mutation_changes_hash(self):
        aig = build_circuit("ctrl", "small")
        before = aig.structural_hash()
        aig.add_po(aig.add_and(2, 4), "extra")
        assert aig.structural_hash() != before

    def test_distinct_circuits_distinct_hashes(self):
        assert (
            build_circuit("ctrl", "small").structural_hash()
            != build_circuit("dec", "small").structural_hash()
        )


class TestLibraryFingerprint:
    def test_memoized_and_stable(self, library):
        assert library.fingerprint() == library.fingerprint()

    def test_distinct_corners_distinct_fingerprints(self):
        assert default_library(10.0).fingerprint() != default_library(300.0).fingerprint()


class TestArtifactCacheMemory:
    def test_get_or_compute_hits(self):
        cache = ArtifactCache()
        calls = []
        key = cache_key("test", 1, "x")
        first = cache.get_or_compute(key, lambda: calls.append(1) or {"v": 42})
        second = cache.get_or_compute(key, lambda: calls.append(1) or {"v": 43})
        assert first is second
        assert len(calls) == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_bound(self):
        cache = ArtifactCache(max_memory_entries=4)
        for i in range(10):
            cache.put(f"k:{i}", i)
        assert cache.stats()["memory_entries"] == 4
        assert cache.get("k:0") is None
        assert cache.get("k:9") == 9

    def test_default_cache_swap(self):
        original = default_cache()
        fresh = ArtifactCache()
        with using_cache(fresh):
            assert default_cache() is fresh
        assert default_cache() is original
        set_default_cache(original)


class TestDiskBackend:
    def test_round_trip(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        cache.put("k:1", {"a": [1, 2, 3]})
        # A second cache over the same directory simulates a restart.
        rehydrated = ArtifactCache(cache_dir=tmp_path)
        assert rehydrated.get("k:1") == {"a": [1, 2, 3]}
        assert rehydrated.stats()["disk_hits"] == 1

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        cache.put("k:1", 123)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        fresh = ArtifactCache(cache_dir=tmp_path)
        assert fresh.get("k:1") is None

    def test_corrupt_entry_quarantined_and_counted(self, tmp_path):
        from repro import obs

        cache = ArtifactCache(cache_dir=tmp_path)
        cache.put("k:1", 123)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"garbage")
        fresh = ArtifactCache(cache_dir=tmp_path)
        with obs.Tracer() as tracer:
            assert fresh.get("k:1") is None
        assert tracer.counters["cache.corrupt"] == 1
        assert fresh.stats()["corrupt"] == 1
        # The bad file is renamed aside, not re-read forever.
        assert list(tmp_path.glob("*.pkl")) == []
        assert len(list(tmp_path.glob("*.corrupt"))) == 1
        # The next get_or_compute recomputes and repopulates disk.
        assert fresh.get_or_compute("k:1", lambda: 456) == 456
        assert len(list(tmp_path.glob("*.pkl"))) == 1

    def test_truncated_entry_degrades_to_miss(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        cache.put("k:1", list(range(1000)))
        for path in tmp_path.glob("*.pkl"):
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 2])
        fresh = ArtifactCache(cache_dir=tmp_path)
        assert fresh.get("k:1") is None
        assert fresh.stats()["corrupt"] == 1

    def test_bitflip_fails_checksum(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        cache.put("k:1", {"x": 1})
        for path in tmp_path.glob("*.pkl"):
            data = bytearray(path.read_bytes())
            data[-1] ^= 0xFF
            path.write_bytes(bytes(data))
        fresh = ArtifactCache(cache_dir=tmp_path)
        assert fresh.get("k:1") is None

    def test_injected_disk_corruption_recovers(self, tmp_path):
        """The cache.disk fault site truncates a write; a rehydrating
        cache must treat it as a miss and recompute."""
        from repro.resilience import FaultPlan, FaultSpec, injecting

        cache = ArtifactCache(cache_dir=tmp_path)
        with injecting(FaultPlan([FaultSpec("cache.disk", first_n=1)])):
            cache.put("k:1", [1, 2, 3])
        fresh = ArtifactCache(cache_dir=tmp_path)
        assert fresh.get("k:1") is None
        assert fresh.get_or_compute("k:1", lambda: [1, 2, 3]) == [1, 2, 3]

    def test_clear_disk_removes_quarantined_files(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        cache.put("k:1", 1)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"bad")
        ArtifactCache(cache_dir=tmp_path).get("k:1")
        assert list(tmp_path.glob("*.corrupt"))
        cache.clear(disk=True)
        assert list(tmp_path.glob("*")) == []


class TestCacheVeto:
    def test_cache_if_false_skips_store(self):
        from repro import obs

        cache = ArtifactCache()
        calls = []

        def compute():
            calls.append(1)
            return "degraded-result"

        with obs.Tracer() as tracer:
            first = cache.get_or_compute("k:1", compute, cache_if=lambda v: False)
            second = cache.get_or_compute("k:1", compute, cache_if=lambda v: False)
        assert first == second == "degraded-result"
        assert len(calls) == 2  # vetoed -> recomputed
        assert tracer.counters["cache.uncacheable"] == 2
        assert tracer.counters["cache.uncacheable.k"] == 2

    def test_cache_if_true_stores_normally(self):
        cache = ArtifactCache()
        calls = []

        def compute():
            calls.append(1)
            return "healthy"

        cache.get_or_compute("k:1", compute, cache_if=lambda v: True)
        cache.get_or_compute("k:1", compute, cache_if=lambda v: True)
        assert len(calls) == 1

    def test_memory_only_put_skips_disk(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path)
        cache.put("k:1", 1, persist=False)
        assert list(tmp_path.glob("*.pkl")) == []

    @pytest.mark.no_chaos  # injected disk corruption / degraded vetoes break the round trip
    def test_library_round_trips_losslessly(self, tmp_path):
        """A characterized library survives the disk tier byte-for-byte."""
        tech = cryo5_technology()
        from repro.pdk.catalog import standard_cell_catalog

        cells = standard_cell_catalog()[:12]
        disk = ArtifactCache(cache_dir=tmp_path)
        original = characterize_library(tech, 10.0, cells=cells, cache=disk)
        # Fresh cache over the same directory: must load, not recompute.
        rehydrated_cache = ArtifactCache(cache_dir=tmp_path)
        loaded = characterize_library(tech, 10.0, cells=cells, cache=rehydrated_cache)
        assert loaded is not original
        assert loaded.fingerprint() == original.fingerprint()
        assert write_liberty(loaded) == write_liberty(original)
        assert rehydrated_cache.stats()["disk_hits"] == 1


class TestCacheKeyScheme:
    def test_same_inputs_same_flow_result(self, library):
        aig = build_circuit("ctrl", "small")
        cache = ArtifactCache()
        ctx = DesignContext.from_library(library, cache=cache)
        first = run_scenarios(aig, context=ctx, vectors=64)
        warm = cache.stats()
        second = run_scenarios(aig, context=ctx, vectors=64)
        assert cache.stats()["misses"] == warm["misses"]  # no recompute
        assert cache.stats()["hits"] > warm["hits"]
        for scenario in first:
            assert first[scenario].to_dict() == second[scenario].to_dict()

    def test_mutated_aig_distinct_key(self, library):
        cache = ArtifactCache()
        ctx = DesignContext.from_library(library, cache=cache)
        aig = build_circuit("ctrl", "small")
        run_scenarios(aig, context=ctx, vectors=64)
        misses = cache.stats()["misses"]
        mutated = build_circuit("ctrl", "small")
        mutated.add_po(mutated.add_and(2, 4), "extra")
        run_scenarios(mutated, context=ctx, vectors=64)
        assert cache.stats()["misses"] > misses

    def test_distinct_temperature_shares_stage12_not_map(self):
        cache = ArtifactCache()
        aig = build_circuit("ctrl", "small")
        cold = DesignContext.from_library(default_library(10.0), cache=cache)
        warm = DesignContext.from_library(default_library(300.0), cache=cache)
        run_scenarios(aig, context=cold, vectors=64)
        stats_after_cold = cache.stats()
        run_scenarios(aig, context=warm, vectors=64)
        # Stages 1-2 are technology-independent -> pure hits; mapping
        # must recompute against the 300 K library -> new misses.
        assert cache.stats()["misses"] > stats_after_cold["misses"]
        assert cache.stats()["hits"] > stats_after_cold["hits"]

    def test_distinct_policy_distinct_map_key(self, library):
        from repro.core import CryoSynthesisFlow

        cache = ArtifactCache()
        ctx = DesignContext.from_library(library, cache=cache)
        aig = build_circuit("ctrl", "small")
        baseline = CryoSynthesisFlow(scenario="baseline", context=ctx)
        optimized = baseline.optimize(aig)
        baseline.map(optimized)
        misses = cache.stats()["misses"]
        CryoSynthesisFlow(scenario="p_d_a", context=ctx).map(optimized)
        assert cache.stats()["misses"] == misses + 1  # only the map stage


class TestViewSharing:
    def test_view_built_once_per_context(self, library):
        cache = ArtifactCache()
        ctx = DesignContext.from_library(library, cache=cache)
        assert ctx.view is ctx.view

    def test_view_shared_across_scenarios(self, library):
        from repro.core import CryoSynthesisFlow

        cache = ArtifactCache()
        ctx = DesignContext.from_library(library, cache=cache)
        flows = [
            CryoSynthesisFlow(scenario=s, context=ctx)
            for s in ("baseline", "p_a_d", "p_d_a")
        ]
        views = {id(flow.context.view) for flow in flows}
        assert len(views) == 1


class TestDiskBounds:
    """LRU size cap and quarantine cap on the disk tier (ISSUE 4)."""

    def _age(self, tmp_path, pattern, ages):
        """Assign deterministic mtimes: larger age = older file."""
        import os
        import time

        now = time.time()
        for path, age in zip(sorted(tmp_path.glob(pattern)), ages):
            os.utime(path, (now - age, now - age))

    def test_lru_eviction_over_size_cap(self, tmp_path):
        from repro import obs

        payload = bytes(200_000)  # ~0.2 MB pickled
        cache = ArtifactCache(cache_dir=tmp_path, max_disk_mb=0.5)
        with obs.Tracer() as tracer:
            cache.put("k:1", payload)
            self._age(tmp_path, "*.pkl", [100.0])
            cache.put("k:2", payload)
            cache.put("k:3", payload)  # pushes total over 0.5 MB
        remaining = len(list(tmp_path.glob("*.pkl")))
        assert remaining == 2
        assert cache.stats()["evicted"] == 1
        assert tracer.counters["cache.evict"] == 1
        # The evicted entry degrades to a clean miss in a fresh cache.
        fresh = ArtifactCache(cache_dir=tmp_path, max_disk_mb=0.5)
        assert fresh.get("k:1") is None
        assert fresh.get("k:3") is not None

    def test_just_written_entry_is_never_evicted(self, tmp_path):
        cache = ArtifactCache(cache_dir=tmp_path, max_disk_mb=0.01)
        cache.put("k:big", bytes(100_000))  # alone exceeds the cap
        fresh = ArtifactCache(cache_dir=tmp_path, max_disk_mb=0.01)
        assert fresh.get("k:big") is not None

    def test_disk_hit_refreshes_recency(self, tmp_path):
        payload = bytes(200_000)
        cache = ArtifactCache(cache_dir=tmp_path, max_disk_mb=0.5)
        cache.put("k:old", payload)
        cache.put("k:older", payload)
        self._age(tmp_path, "*.pkl", [50.0, 100.0])
        # Touch k:old from a fresh instance (memory tier empty, so the
        # read goes to disk and refreshes its mtime).
        fresh = ArtifactCache(cache_dir=tmp_path, max_disk_mb=0.5)
        assert fresh.get("k:old") is not None
        fresh.put("k:new", payload)  # forces one eviction
        survivors = ArtifactCache(cache_dir=tmp_path, max_disk_mb=0.5)
        assert survivors.get("k:old") is not None
        assert survivors.get("k:new") is not None

    def test_corrupt_quarantine_cap(self, tmp_path):
        from repro import obs

        cache = ArtifactCache(cache_dir=tmp_path, max_corrupt_entries=2)
        for i in range(5):
            cache.put(f"k:{i}", i)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"garbage")
        fresh = ArtifactCache(cache_dir=tmp_path, max_corrupt_entries=2)
        with obs.Tracer() as tracer:
            for i in range(5):
                assert fresh.get(f"k:{i}") is None
        assert len(list(tmp_path.glob("*.corrupt"))) == 2
        assert tracer.counters["cache.corrupt_evicted"] == 3
        assert fresh.stats()["corrupt_evicted"] == 3

    def test_env_knobs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "12.5")
        monkeypatch.setenv("REPRO_CACHE_MAX_CORRUPT", "3")
        cache = ArtifactCache(cache_dir=tmp_path)
        assert cache.max_disk_mb == 12.5
        assert cache.max_corrupt_entries == 3
