"""Tests for technology mapping: cost policies, matching, extraction."""

import random

import pytest

from repro.charlib import default_library
from repro.mapping import (
    CostPolicy,
    TechLibraryView,
    all_orderings,
    baseline_power_aware,
    map_to_gates,
    p_a_d,
    p_d_a,
)
from repro.sat import assert_equivalent
from repro.synth import AIG, lit_not


@pytest.fixture(scope="module")
def library():
    return default_library(10.0)


@pytest.fixture(scope="module")
def view(library):
    return TechLibraryView(library)


def random_network(seed: int, n_pis=6, n_ops=60, n_pos=3) -> AIG:
    rng = random.Random(seed)
    g = AIG()
    lits = [g.add_pi() for _ in range(n_pis)]
    for _ in range(n_ops):
        a, b = rng.choice(lits), rng.choice(lits)
        op = rng.choice(["add_and", "add_or", "add_xor"])
        lits.append(getattr(g, op)(a ^ rng.randint(0, 1), b ^ rng.randint(0, 1)))
    for i in range(n_pos):
        g.add_po(lits[-(i + 1)])
    return g.cleanup()


class TestCostPolicy:
    def test_permutation_enforced(self):
        with pytest.raises(ValueError):
            CostPolicy("bad", ("power", "power", "delay"))

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            CostPolicy("bad", ("power", "area", "delay"), epsilon=-0.1)

    def test_primary_dominates(self):
        policy = p_a_d()
        cheap_power = {"power": 1.0, "area": 100.0, "delay": 100.0}
        cheap_area = {"power": 2.0, "area": 1.0, "delay": 1.0}
        assert policy.better(cheap_power, cheap_area)
        assert not policy.better(cheap_area, cheap_power)

    def test_tie_falls_through(self):
        policy = p_a_d()
        a = {"power": 1.00, "area": 5.0, "delay": 1.0}
        b = {"power": 1.01, "area": 2.0, "delay": 1.0}  # power ties (1% < eps)
        assert policy.better(b, a)

    def test_orderings_distinct(self):
        orderings = all_orderings()
        assert len(orderings) == 6
        assert len({o.priorities for o in orderings}) == 6

    def test_named_policies(self):
        assert baseline_power_aware().priorities[0] == "area"
        assert p_a_d().priorities == ("power", "area", "delay")
        assert p_d_a().priorities == ("power", "delay", "area")


class TestLibraryView:
    def test_inverter_found(self, view):
        assert view.inverter.name.startswith(("INV", "CLKINV"))

    def test_families_group_drive_variants(self, view):
        nand2_families = [
            family
            for family in view.families.values()
            if family.arity == 2 and family.table == 0b0111
        ]
        assert len(nand2_families) == 1
        assert len(nand2_families[0].cells) >= 4  # NAND2x1..x8

    def test_matches_for_basic_functions(self, view):
        assert view.matches(0b0111, 2)  # NAND2
        assert view.matches(0b0110, 2)  # XOR2
        assert view.matches(0b01, 1)  # INV

    def test_matches_cover_negated_inputs(self, view):
        # a & !b has a direct config (AND2B) or one using inverters.
        configs = view.matches(0b0010, 2)
        assert configs

    def test_oversize_arity_returns_empty(self, view):
        assert view.matches(0, 5) == []

    def test_match_semantics(self, view, library):
        # Every advertised config must actually realize the function.
        rng = random.Random(0)
        checked = 0
        for arity in (2, 3):
            tables = list(view.match_tables[arity])
            rng.shuffle(tables)
            for tt in tables[:10]:
                for config in view.matches(tt, arity)[:3]:
                    cell_tt, cell_arity = config.function_key
                    realized = 0
                    for assignment in range(1 << arity):
                        pin_values = 0
                        for pin in range(cell_arity):
                            bit = (assignment >> config.leaf_of_pin[pin]) & 1
                            if (config.pin_neg_mask >> pin) & 1:
                                bit ^= 1
                            pin_values |= bit << pin
                        value = (cell_tt >> pin_values) & 1
                        if config.output_neg:
                            value ^= 1
                        realized |= value << assignment
                    assert realized == tt, (tt, config)
                    checked += 1
        assert checked > 20


class TestMapper:
    @pytest.mark.parametrize("seed", range(4))
    def test_equivalence_all_policies(self, seed, library):
        g = random_network(seed)
        for policy in (baseline_power_aware(), p_a_d(), p_d_a()):
            net = map_to_gates(g, library, policy)
            assert_equivalent(g, net.to_aig(library), f"{policy.name} seed {seed}")

    def test_complemented_outputs_get_inverters(self, library):
        g = AIG()
        a, b = g.add_pi(), g.add_pi()
        g.add_po(lit_not(g.add_and(a, b)))
        net = map_to_gates(g, library)
        assert_equivalent(g, net.to_aig(library), "complемented po")

    def test_constant_outputs(self, library):
        g = AIG()
        g.add_pi("a")
        g.add_po(0, "zero")
        g.add_po(1, "one")
        net = map_to_gates(g, library)
        assert net.evaluate(library, [True]) == [False, True]
        assert net.evaluate(library, [False]) == [False, True]

    def test_pi_passthrough_po(self, library):
        g = AIG()
        a = g.add_pi("a")
        g.add_po(a, "same")
        net = map_to_gates(g, library)
        assert net.evaluate(library, [True]) == [True]
        assert net.evaluate(library, [False]) == [False]

    def test_gate_count_reasonable(self, library):
        g = random_network(5, n_ops=100)
        net = map_to_gates(g, library)
        # Mapping onto multi-input cells compresses vs AND count.
        assert net.num_gates < g.num_ands * 1.2

    def test_netlist_topologically_ordered(self, library):
        g = random_network(6)
        net = map_to_gates(g, library)
        driven = set(net.pi_nets)
        for gate in net.gates:
            for pin_net in gate.pins.values():
                assert pin_net in driven, f"{gate.name} uses undriven {pin_net}"
            driven.add(gate.output_net)

    def test_policies_actually_differ_somewhere(self, library):
        differ = False
        for seed in range(8):
            g = random_network(seed, n_ops=120)
            area_first = map_to_gates(g, library, baseline_power_aware())
            power_first = map_to_gates(g, library, p_a_d())
            if area_first.cell_counts() != power_first.cell_counts():
                differ = True
                break
        assert differ, "cost orderings never changed a mapping decision"


class TestMappedNetlist:
    def test_cell_counts_and_area(self, library):
        g = random_network(7)
        net = map_to_gates(g, library)
        counts = net.cell_counts()
        assert sum(counts.values()) == net.num_gates
        assert net.total_area(library) > 0.0

    def test_simulation_matches_aig(self, library):
        g = random_network(8)
        net = map_to_gates(g, library)
        rng = random.Random(0)
        for _ in range(20):
            inputs = [rng.random() < 0.5 for _ in range(g.num_pis)]
            assert net.evaluate(library, inputs) == g.evaluate(inputs)

    def test_drivers_and_loads_consistent(self, library):
        g = random_network(9)
        net = map_to_gates(g, library)
        drivers = net.drivers()
        loads = net.loads()
        for net_name, sinks in loads.items():
            if net_name not in net.pi_nets:
                assert net_name in drivers
            for gate, pin in sinks:
                assert gate.pins[pin] == net_name
