"""Stage-boundary guards: structural invariants, bounded CEC, quarantine.

The headline contract (ISSUE 4): a functionally wrong artifact — here
rigged via the ``synth.miscompile`` fault site — is caught at the
stage boundary, never enters the artifact cache, and surfaces either
as a :class:`GuardViolation` (enforce) or in
``FlowResult.guard_violations`` (warn).
"""

import math

import pytest

from repro import obs
from repro.benchgen import build_circuit
from repro.charlib.engine import default_library
from repro.core import CryoSynthesisFlow
from repro.mapping.netlist import GateInstance, MappedNetlist
from repro.resilience import FaultPlan, FaultSpec, GuardViolation, injecting
from repro.resilience.guards import (
    check_aig_invariants,
    check_library_invariants,
    netlist_guard,
    synthesis_guard,
)
from repro.sat.cec import check_equivalence
from repro.synth.aig import AIG


@pytest.fixture(scope="module")
def library():
    return default_library(10.0)


def _tiny_aig() -> AIG:
    aig = AIG("tiny")
    a, b = aig.add_pi("a"), aig.add_pi("b")
    aig.add_po(aig.add_or(a, b), "f")
    return aig


class TestAIGInvariants:
    def test_healthy_graphs_pass(self):
        assert check_aig_invariants(_tiny_aig()) == []
        assert check_aig_invariants(build_circuit("ctrl", "small")) == []

    def test_array_length_disagreement(self):
        aig = _tiny_aig()
        aig._is_pi.append(False)
        assert any("disagree" in v for v in check_aig_invariants(aig))

    def test_constant_node_corrupted(self):
        aig = _tiny_aig()
        aig._is_pi[0] = True
        assert any("constant" in v for v in check_aig_invariants(aig))

    def test_pi_with_fanins(self):
        aig = _tiny_aig()
        aig._fanin0[aig.pis[0]] = 2
        assert any("PI node" in v for v in check_aig_invariants(aig))

    def test_non_canonical_fanin_order(self):
        aig = _tiny_aig()
        and_node = len(aig._fanin0) - 1
        f0, f1 = aig._fanin0[and_node], aig._fanin1[and_node]
        aig._fanin0[and_node], aig._fanin1[and_node] = f1, f0
        assert any("canonically" in v for v in check_aig_invariants(aig))

    def test_topological_order_broken(self):
        aig = _tiny_aig()
        and_node = len(aig._fanin0) - 1
        aig._fanin1[and_node] = (and_node + 7) << 1  # forward reference
        assert any("topological" in v for v in check_aig_invariants(aig))

    def test_dangling_po(self):
        aig = _tiny_aig()
        aig.pos[0] = 999 << 1
        assert any("pos[0]" in v for v in check_aig_invariants(aig))

    def test_name_count_mismatch(self):
        aig = _tiny_aig()
        aig.po_names.append("ghost")
        assert any("PO names" in v for v in check_aig_invariants(aig))


class TestSynthesisGuard:
    def test_equivalent_restructure_passes(self):
        before = build_circuit("ctrl", "small")
        assert synthesis_guard("test", before, before.cleanup()) == []

    def test_interface_change_detected(self):
        before = _tiny_aig()
        after = _tiny_aig()
        after.add_po(after.pos[0], "extra")
        violations = synthesis_guard("test", before, after)
        assert any("PO count changed" in v for v in violations)

    def test_functional_change_detected(self):
        before = _tiny_aig()
        after = AIG("tiny")  # AND instead of OR: same interface
        a, b = after.add_pi("a"), after.add_pi("b")
        after.add_po(after.add_and(a, b), "f")
        violations = synthesis_guard("test", before, after)
        assert any("cec" in v for v in violations)

    def test_sat_budget_exhaustion_is_counted_not_failed(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD_CEC_LIMIT", "1")
        before = build_circuit("ctrl", "small")
        with obs.Tracer() as tracer:
            assert synthesis_guard("test", before, before.cleanup()) == []
        counters = tracer.metrics_snapshot()["counters"]
        assert counters.get("guard.cec.unproven", 0) == 1


class TestLibraryInvariants:
    def test_healthy_library_passes(self, library):
        assert check_library_invariants(library) == []

    def test_non_finite_leakage_detected(self, library):
        cell = next(iter(library.cells.values()))
        state = next(iter(cell.leakage_by_state))
        saved = cell.leakage_by_state[state]
        cell.leakage_by_state[state] = float("nan")
        try:
            violations = check_library_invariants(library)
        finally:
            cell.leakage_by_state[state] = saved
        assert any("leakage" in v for v in violations)

    def test_non_finite_table_value_detected(self, library):
        cell = next(c for c in library.cells.values() if c.arcs)
        arc = cell.arcs[0]
        table = arc.cell_rise
        saved = table.values
        bad = (tuple([math.inf] + list(saved[0][1:])),) + saved[1:]
        object.__setattr__(table, "values", bad)  # corrupt the frozen table
        try:
            violations = check_library_invariants(library)
        finally:
            object.__setattr__(table, "values", saved)
        assert any("non-finite table value" in v for v in violations)

    def test_non_monotone_axis_detected(self, library):
        cell = next(c for c in library.cells.values() if c.arcs)
        table = cell.arcs[0].cell_fall
        saved = table.slews
        object.__setattr__(table, "slews", saved[::-1])
        try:
            violations = check_library_invariants(library)
        finally:
            object.__setattr__(table, "slews", saved)
        assert any("not strictly increasing" in v for v in violations)


class TestNetlistGuard:
    def _netlist(self, cell: str = "INVx1") -> MappedNetlist:
        return MappedNetlist(
            name="n",
            pi_nets=["a"],
            po_nets=["y"],
            gates=[
                GateInstance(
                    name="g0", cell=cell, pins={"A": "a"}, output_net="y"
                )
            ],
        )

    def test_healthy_netlist_passes(self, library):
        assert netlist_guard(library, self._netlist()) == []

    def test_unknown_cell_detected(self, library):
        violations = netlist_guard(library, self._netlist(cell="NOT_A_CELL"))
        assert any("unknown cell" in v for v in violations)

    def test_undriven_input_detected(self, library):
        netlist = self._netlist()
        netlist.gates[0].pins["A"] = "phantom"
        violations = netlist_guard(library, netlist)
        assert any("no earlier driver" in v for v in violations)

    def test_undriven_po_detected(self, library):
        netlist = self._netlist()
        netlist.po_nets.append("floating")
        violations = netlist_guard(library, netlist)
        assert any("undriven" in v for v in violations)


class TestMiscompileQuarantine:
    """The acceptance scenario: rigged miscompile caught + quarantined."""

    def test_enforce_raises_and_quarantines(self, library):
        aig = build_circuit("ctrl", "small")
        plan = FaultPlan([FaultSpec("synth.miscompile", first_n=1)], seed=0)
        flow = CryoSynthesisFlow(library)
        with injecting(plan):
            with pytest.raises(GuardViolation) as info:
                flow.run(aig)
        assert info.value.classification == "permanent"
        assert any("cec" in v for v in info.value.violations)
        # Quarantine: the poisoned artifact must NOT have been cached
        # under the stage key — a clean rerun in the same cache
        # recomputes and passes the same guard.
        clean = CryoSynthesisFlow(library).optimize(aig)
        assert check_equivalence(aig, clean).equivalent

    def test_warn_mode_reports_without_failing(self, library, monkeypatch):
        monkeypatch.setenv("REPRO_GUARDS", "warn")
        aig = build_circuit("ctrl", "small")
        plan = FaultPlan([FaultSpec("synth.miscompile", first_n=1)], seed=0)
        with injecting(plan):
            result = CryoSynthesisFlow(library).run(aig)
        assert result.guard_violations
        assert "guard_violations" in result.to_dict()
        # Still quarantined: with the fault gone, the same cache
        # yields a functionally correct network.
        monkeypatch.setenv("REPRO_GUARDS", "enforce")
        clean = CryoSynthesisFlow(library).optimize(aig)
        assert check_equivalence(aig, clean).equivalent

    def test_off_mode_skips_guards(self, library, monkeypatch):
        monkeypatch.setenv("REPRO_GUARDS", "off")
        aig = build_circuit("ctrl", "small")
        plan = FaultPlan([FaultSpec("synth.miscompile", first_n=1)], seed=0)
        with injecting(plan):
            result = CryoSynthesisFlow(library).run(aig)
        assert result.guard_violations == ()
