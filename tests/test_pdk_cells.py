"""Tests for cell templates, the catalog, and transistor netlist generation."""

import pytest

from repro.device import CryoFinFET
from repro.pdk import (
    CellTemplate,
    Lit,
    Stage,
    cryo5_technology,
    standard_cell_catalog,
)
from repro.pdk.catalog import (
    catalog_by_name,
    make_dff,
    make_fa,
    make_inv,
    make_latch,
    make_mux2,
    make_nand,
    make_nor,
    make_xor2,
)
from repro.spice import Simulator

TECH = cryo5_technology()


class TestTechnology:
    def test_supply(self):
        assert TECH.vdd == pytest.approx(0.7)

    def test_device_factories(self):
        n = TECH.nfet_device(3)
        assert isinstance(n, CryoFinFET)
        assert n.params.nfin == 3
        assert n.params.polarity == "n"
        assert TECH.pfet_device(2).params.polarity == "p"

    def test_pfin_ratio(self):
        assert TECH.pfin_for(2) == 3
        assert TECH.pfin_for(1) >= 1

    def test_grids_are_seven_points(self):
        # The paper characterizes on a 7x7 grid.
        assert len(TECH.slew_grid) == 7
        assert len(TECH.load_grid) == 7

    def test_calibrated_params_override(self):
        from repro.device import default_nfet_5nm
        from repro.pdk import cryo5_technology

        custom = default_nfet_5nm().with_fins(7)
        tech = cryo5_technology(nfet=custom)
        # Fin count is normalized back to 1 for sizing control.
        assert tech.nfet.nfin == 1


class TestCellLogic:
    def test_nand_truth_tables(self):
        assert make_nand(2, 1).output_truth_table("Y") == 0b0111
        assert make_nand(3, 1).output_truth_table("Y") == 0x7F
        assert make_nor(2, 1).output_truth_table("Y") == 0b0001

    def test_xor(self):
        assert make_xor2(1).output_truth_table("Y") == 0b0110

    def test_mux(self):
        # Y = S ? B : A with inputs (A, B, S).
        assert make_mux2(1).output_truth_table("Y") == 0xCA

    def test_full_adder(self):
        fa = make_fa(1)
        assert fa.output_truth_table("S") == 0x96
        assert fa.output_truth_table("CO") == 0xE8

    def test_output_function_matches_truth_table(self):
        from repro.pdk import truth_table

        for cell in (make_nand(2, 1), make_xor2(2), make_mux2(1)):
            expr = cell.output_function("Y")
            assert truth_table(expr, list(cell.inputs)) == cell.output_truth_table("Y")

    def test_unknown_output_rejected(self):
        with pytest.raises(KeyError):
            make_inv(1).output_truth_table("Z")

    def test_validation_rejects_unknown_node(self):
        with pytest.raises(ValueError):
            CellTemplate(
                name="BROKEN",
                inputs=("A",),
                outputs=("Y",),
                stages=(Stage("Y", Lit("NOPE")),),
            )

    def test_validation_rejects_undriven_output(self):
        with pytest.raises(ValueError):
            CellTemplate(
                name="BROKEN",
                inputs=("A",),
                outputs=("Z",),
                stages=(Stage("Y", Lit("A")),),
            )

    def test_latch_transparent_and_opaque(self):
        latch = make_latch(1)
        high = latch.evaluate({"D": True, "CLK": True})
        assert high["Q"] is True
        low = latch.evaluate({"D": False, "CLK": True})
        assert low["Q"] is False

    def test_dff_is_sequential(self):
        dff = make_dff(1)
        assert dff.is_sequential
        assert dff.clock_pin == "CLK"


class TestSizing:
    def test_inverter_transistor_count(self):
        assert make_inv(1).transistor_count(TECH) == 2

    def test_nand2_transistor_count(self):
        assert make_nand(2, 1).transistor_count(TECH) == 4

    def test_bigger_drive_more_fins(self):
        assert make_inv(4).total_fins(TECH) > make_inv(1).total_fins(TECH)

    def test_area_scales_with_fins(self):
        inv1, inv4 = make_inv(1), make_inv(4)
        assert inv4.area_um2(TECH) / inv1.area_um2(TECH) == pytest.approx(
            inv4.total_fins(TECH) / inv1.total_fins(TECH)
        )

    def test_input_fins_single_pin(self):
        n, p = make_inv(2).input_fins("A", TECH)
        assert n == 2
        assert p == TECH.pfin_for(2)

    def test_series_stack_upsized(self):
        # NAND4 n-devices are stacked 4 deep, so each gets 4x fins.
        nand4 = make_nand(4, 1)
        n, p = nand4.input_fins("A", TECH)
        assert n == 4
        assert p == TECH.pfin_for(1)


class TestNetlistGeneration:
    def test_inverter_netlist(self):
        circuit = make_inv(1).to_circuit(TECH)
        assert len(circuit.finfets) == 2
        kinds = {m.device.params.polarity for m in circuit.finfets}
        assert kinds == {"n", "p"}

    def test_nand2_topology(self):
        circuit = make_nand(2, 1).to_circuit(TECH)
        nfets = [m for m in circuit.finfets if m.device.params.polarity == "n"]
        pfets = [m for m in circuit.finfets if m.device.params.polarity == "p"]
        assert len(nfets) == 2
        assert len(pfets) == 2
        # Series n-stack: exactly one internal node shared by two nfets.
        nodes = [m.drain for m in nfets] + [m.source for m in nfets]
        internal = [n for n in nodes if n.startswith("Y_int")]
        assert len(internal) == 2
        # Parallel p-devices both connect Y to vdd.
        assert all({m.drain, m.source} == {"Y", "vdd"} for m in pfets)

    def test_nand2_dc_logic(self):
        cell = make_nand(2, 1)
        for a in (0.0, TECH.vdd):
            for b in (0.0, TECH.vdd):
                circuit = cell.to_circuit(TECH)
                circuit.add_vsource("va", "A", "0", a)
                circuit.add_vsource("vb", "B", "0", b)
                op = Simulator(circuit, temperature_k=300.0).dc_operating_point()
                expected = 0.0 if (a > 0 and b > 0) else TECH.vdd
                assert op["Y"] == pytest.approx(expected, abs=0.02), (a, b)

    def test_xor2_dc_logic(self):
        cell = make_xor2(1)
        for a in (0.0, TECH.vdd):
            for b in (0.0, TECH.vdd):
                circuit = cell.to_circuit(TECH)
                circuit.add_vsource("va", "A", "0", a)
                circuit.add_vsource("vb", "B", "0", b)
                op = Simulator(circuit, temperature_k=300.0).dc_operating_point()
                expected = TECH.vdd if (a > 0) != (b > 0) else 0.0
                assert op["Y"] == pytest.approx(expected, abs=0.02), (a, b)

    def test_load_caps_attached(self):
        circuit = make_inv(1).to_circuit(TECH, load_caps={"Y": 5e-15})
        names = [c.name for c in circuit.capacitors]
        assert "cl_Y" in names


class TestCatalog:
    def test_exactly_200_cells(self):
        # The paper's library "consists of 200 combinational and
        # sequential logic gates".
        assert len(standard_cell_catalog()) == 200

    def test_no_duplicate_names(self):
        names = [c.name for c in standard_cell_catalog()]
        assert len(set(names)) == len(names)

    def test_has_sequential_cells(self):
        seq = [c for c in standard_cell_catalog() if c.is_sequential]
        assert len(seq) >= 8
        assert any(c.name.startswith("DFF") for c in seq)
        assert any(c.name.startswith("LATCH") for c in seq)

    def test_catalog_by_name(self):
        by_name = catalog_by_name()
        assert "INVx1" in by_name
        assert "NAND2x1" in by_name
        assert by_name["INVx1"].footprint == "INV"

    def test_all_cells_have_consistent_structure(self):
        for cell in standard_cell_catalog():
            assert cell.inputs, cell.name
            assert cell.outputs, cell.name
            assert cell.area_um2(TECH) > 0.0, cell.name

    def test_all_combinational_truth_tables_nontrivial(self):
        for cell in standard_cell_catalog():
            if cell.is_sequential or cell.footprint in ("TIEHI", "TIELO"):
                continue
            for out in cell.outputs:
                table = cell.output_truth_table(out)
                size = 1 << len(cell.inputs)
                assert 0 < table < (1 << size) - 1, cell.name

    def test_drive_families_share_function(self):
        by_name = catalog_by_name()
        assert by_name["NAND2x1"].output_truth_table("Y") == by_name[
            "NAND2x4"
        ].output_truth_table("Y")
        assert by_name["INVx1"].output_truth_table("Y") == by_name[
            "INVx8"
        ].output_truth_table("Y")
