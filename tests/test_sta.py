"""Tests for static timing analysis and signoff power."""

import random

import pytest

from repro.charlib import default_library
from repro.mapping import map_to_gates
from repro.sta import (
    PowerAnalyzer,
    SignoffConfig,
    StaticTimingAnalyzer,
    analyze_power,
    critical_delay,
)
from repro.synth import AIG


@pytest.fixture(scope="module")
def lib300():
    return default_library(300.0)


@pytest.fixture(scope="module")
def lib10():
    return default_library(10.0)


def chain_network(length: int) -> AIG:
    """A parity chain over fresh inputs: depth scales linearly and no
    Boolean simplification can collapse it."""
    g = AIG()
    acc = g.add_pi("x0")
    for i in range(length):
        acc = g.add_xor(acc, g.add_pi(f"x{i + 1}"))
    g.add_po(acc, "y")
    return g


def random_network(seed: int, n_ops=60) -> AIG:
    rng = random.Random(seed)
    g = AIG()
    lits = [g.add_pi() for _ in range(6)]
    for _ in range(n_ops):
        a, b = rng.choice(lits), rng.choice(lits)
        lits.append(
            getattr(g, rng.choice(["add_and", "add_or", "add_xor"]))(
                a ^ rng.randint(0, 1), b ^ rng.randint(0, 1)
            )
        )
    for i in range(3):
        g.add_po(lits[-(i + 1)])
    return g.cleanup()


class TestTiming:
    def test_deeper_chain_longer_delay(self, lib10):
        short = map_to_gates(chain_network(4), lib10)
        long = map_to_gates(chain_network(12), lib10)
        assert critical_delay(long, lib10) > 1.5 * critical_delay(short, lib10)

    def test_arrival_monotone_along_path(self, lib10):
        net = map_to_gates(random_network(0), lib10)
        report = StaticTimingAnalyzer(net, lib10).analyze()
        for gate in net.gates:
            out_arrival = report.arrival[gate.output_net]
            for pin_net in gate.pins.values():
                assert out_arrival >= report.arrival[pin_net] - 1e-15

    def test_critical_path_traceable(self, lib10):
        net = map_to_gates(chain_network(8), lib10)
        report = StaticTimingAnalyzer(net, lib10).analyze()
        assert len(report.critical_path) >= 8
        gate_names = {g.name for g in net.gates}
        assert all(name in gate_names for name in report.critical_path)

    def test_loads_include_pins_and_wires(self, lib10):
        net = map_to_gates(random_network(1), lib10)
        config = SignoffConfig()
        loads = StaticTimingAnalyzer(net, lib10, config).net_loads()
        for value in loads.values():
            assert value >= config.wire_cap_base

    def test_output_load_applied_to_pos(self, lib10):
        net = map_to_gates(chain_network(3), lib10)
        big = SignoffConfig(output_load=2e-14)
        small = SignoffConfig(output_load=1e-16)
        assert critical_delay(net, lib10, big) > critical_delay(net, lib10, small)

    def test_input_slew_propagates(self, lib10):
        net = map_to_gates(chain_network(3), lib10)
        fast = SignoffConfig(input_slew=2e-12)
        slow = SignoffConfig(input_slew=1.2e-10)
        assert critical_delay(net, lib10, slow) > critical_delay(net, lib10, fast)

    def test_cryo_vs_room_delay_close(self, lib300, lib10):
        # Fig. 2(a) at the netlist level: same netlist timed against
        # both corners gives nearly identical delay.
        g = random_network(2)
        net = map_to_gates(g, lib300)
        d300 = critical_delay(net, lib300)
        d10 = critical_delay(net, lib10)
        assert d10 == pytest.approx(d300, rel=0.25)


class TestPower:
    def test_decomposition_sums_to_total(self, lib300):
        net = map_to_gates(random_network(3), lib300)
        report = analyze_power(net, lib300, clock_period=1e-9)
        assert report.total == pytest.approx(
            report.leakage + report.internal + report.switching
        )
        assert report.leakage_share + report.internal_share + report.switching_share == pytest.approx(1.0)

    def test_dynamic_power_scales_with_frequency(self, lib300):
        net = map_to_gates(random_network(4), lib300)
        fast = analyze_power(net, lib300, clock_period=1e-10)
        slow = analyze_power(net, lib300, clock_period=1e-9)
        assert fast.switching == pytest.approx(10.0 * slow.switching, rel=1e-6)
        assert fast.internal == pytest.approx(10.0 * slow.internal, rel=1e-6)

    def test_leakage_independent_of_frequency(self, lib300):
        net = map_to_gates(random_network(4), lib300)
        fast = analyze_power(net, lib300, clock_period=1e-10)
        slow = analyze_power(net, lib300, clock_period=1e-9)
        assert fast.leakage == pytest.approx(slow.leakage, rel=1e-9)

    def test_leakage_share_collapses_at_cryo(self, lib300, lib10):
        # Fig. 2(c): leakage contribution becomes negligible at 10 K.
        g = random_network(5)
        clock = 1e-9
        warm = analyze_power(map_to_gates(g, lib300), lib300, clock)
        cold = analyze_power(map_to_gates(g, lib10), lib10, clock)
        assert warm.leakage_share > 1e-3
        assert cold.leakage_share < 1e-4 * max(warm.leakage_share, 1e-12) or cold.leakage_share < 1e-6

    def test_reproducible_with_seed(self, lib300):
        net = map_to_gates(random_network(6), lib300)
        p1 = analyze_power(net, lib300, 1e-9, seed=11)
        p2 = analyze_power(net, lib300, 1e-9, seed=11)
        assert p1.total == p2.total

    def test_invalid_clock_rejected(self, lib300):
        net = map_to_gates(random_network(7), lib300)
        with pytest.raises(ValueError):
            analyze_power(net, lib300, clock_period=0.0)

    def test_vector_count_validated(self, lib300):
        net = map_to_gates(random_network(7), lib300)
        with pytest.raises(ValueError):
            PowerAnalyzer(net, lib300, vectors=1)

    def test_quiet_inputs_less_switching(self, lib300):
        net = map_to_gates(random_network(8), lib300)
        busy = PowerAnalyzer(net, lib300, pi_probability=0.5).analyze(1e-9)
        quiet = PowerAnalyzer(net, lib300, pi_probability=0.05).analyze(1e-9)
        assert quiet.switching < busy.switching
