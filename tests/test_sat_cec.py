"""Tests for Tseitin encoding and equivalence checking."""

import random

import pytest

from repro.sat import AIGEncoder, Solver, assert_equivalent, check_equivalence
from repro.synth import AIG, lit_not


def xor_network():
    g = AIG()
    a, b = g.add_pi("a"), g.add_pi("b")
    g.add_po(g.add_xor(a, b), "y")
    return g


def xor_via_demorgan():
    g = AIG()
    a, b = g.add_pi("a"), g.add_pi("b")
    t = g.add_or(g.add_and(a, b), g.add_and(lit_not(a), lit_not(b)))
    g.add_po(lit_not(t), "y")
    return g


def and_network():
    g = AIG()
    a, b = g.add_pi(), g.add_pi()
    g.add_po(g.add_and(a, b))
    return g


class TestEncoder:
    def test_encoding_is_satisfiable(self):
        solver = Solver()
        encoder = AIGEncoder(solver)
        encoder.encode(xor_network())
        assert solver.solve() is True

    def test_po_forced_by_inputs(self):
        g = xor_network()
        solver = Solver()
        encoder = AIGEncoder(solver)
        node_var = encoder.encode(g)
        pi_vars = [node_var[n] for n in g.pis]
        po_lit = encoder.literal(node_var, g.pos[0])
        # a=1, b=0 -> xor = 1, so PO cannot be false.
        assert solver.solve([pi_vars[0], -pi_vars[1], -po_lit]) is False
        assert solver.solve([pi_vars[0], -pi_vars[1], po_lit]) is True

    def test_shared_pi_vars(self):
        solver = Solver()
        encoder = AIGEncoder(solver)
        pis = [solver.new_var(), solver.new_var()]
        encoder.encode(xor_network(), pis)
        encoder.encode(xor_via_demorgan(), pis)
        # Encodings over shared inputs cannot disagree.
        # (Miter check done through check_equivalence below; here we
        # just confirm the shared encoding is consistent.)
        assert solver.solve() is True

    def test_pi_vars_length_checked(self):
        solver = Solver()
        encoder = AIGEncoder(solver)
        with pytest.raises(ValueError):
            encoder.encode(xor_network(), [solver.new_var()])


class TestCEC:
    def test_equivalent_structures(self):
        result = check_equivalence(xor_network(), xor_via_demorgan())
        assert result.equivalent

    def test_inequivalent_with_counterexample(self):
        result = check_equivalence(xor_network(), and_network())
        assert not result.equivalent
        assert result.counterexample is not None
        cex = list(result.counterexample)
        assert xor_network().evaluate(cex) != and_network().evaluate(cex)

    def test_interface_mismatch_rejected(self):
        g = AIG()
        g.add_pi()
        g.add_po(0)
        with pytest.raises(ValueError):
            check_equivalence(g, xor_network())

    def test_simulation_prefilter_finds_easy_differences(self):
        result = check_equivalence(xor_network(), and_network(), simulation_patterns=64)
        assert not result.equivalent

    def test_sat_only_path(self):
        result = check_equivalence(
            xor_network(), xor_via_demorgan(), simulation_patterns=0
        )
        assert result.equivalent

    def test_assert_equivalent_raises_with_context(self):
        with pytest.raises(AssertionError, match="mycontext"):
            assert_equivalent(xor_network(), and_network(), "mycontext")

    def test_cleanup_preserves_function_randomized(self):
        rng = random.Random(5)
        for _ in range(10):
            g = AIG()
            lits = [g.add_pi() for _ in range(6)]
            for _ in range(80):
                a, b = rng.choice(lits), rng.choice(lits)
                lits.append(
                    getattr(g, rng.choice(["add_and", "add_or", "add_xor"]))(
                        a ^ rng.randint(0, 1), b ^ rng.randint(0, 1)
                    )
                )
            g.add_po(lits[-1])
            g.add_po(lits[-3])
            assert check_equivalence(g, g.cleanup()).equivalent

    def test_multi_output_counterexample_indexed(self):
        g1 = AIG()
        a, b = g1.add_pi(), g1.add_pi()
        g1.add_po(g1.add_and(a, b))
        g1.add_po(g1.add_or(a, b))
        g2 = AIG()
        a, b = g2.add_pi(), g2.add_pi()
        g2.add_po(g2.add_and(a, b))
        g2.add_po(g2.add_xor(a, b))
        result = check_equivalence(g1, g2)
        assert not result.equivalent
        assert result.failing_output == 1
