"""Tests for the synthetic probe station and the calibration loop."""

import numpy as np
import pytest

from repro.device import (
    CryoFinFET,
    CryoProbeStation,
    calibrate,
    default_nfet_5nm,
    default_pfet_5nm,
    paper_measurement_campaign,
    parameter_recovery_error,
    perturbed_silicon,
    validate,
)


@pytest.fixture(scope="module")
def silicon():
    return perturbed_silicon(default_nfet_5nm(), seed=42)


@pytest.fixture(scope="module")
def station(silicon):
    return CryoProbeStation(silicon, seed=7)


class TestPerturbedSilicon:
    def test_differs_from_base(self, silicon):
        base = default_nfet_5nm()
        assert silicon.vth0 != base.vth0
        assert silicon.mu_phonon_300 != base.mu_phonon_300

    def test_deterministic_per_seed(self):
        a = perturbed_silicon(default_nfet_5nm(), seed=5)
        b = perturbed_silicon(default_nfet_5nm(), seed=5)
        c = perturbed_silicon(default_nfet_5nm(), seed=6)
        assert a == b
        assert a != c

    def test_stays_physical(self):
        for seed in range(20):
            p = perturbed_silicon(default_nfet_5nm(), seed=seed)
            assert p.ideality >= 1.0
            assert p.band_tail_temperature >= 5.0
            assert p.vth0 > 0.0


class TestProbeStation:
    def test_rejects_setpoints_below_stable_limit(self, station):
        # Paper: probe heat flux makes 10 K the lowest stable setpoint.
        with pytest.raises(ValueError):
            station.measure_point(0.5, 0.7, 4.0)

    def test_measurement_noise_present(self, station):
        readings = {station.measure_point(0.6, 0.7, 300.0).ids for _ in range(5)}
        assert len(readings) > 1

    def test_noise_floor_visible_in_deep_subthreshold(self, silicon):
        station = CryoProbeStation(silicon, seed=3)
        point = station.measure_point(0.0, 0.05, 10.0)
        # True current is ~1e-16 A; the reading is dominated by the
        # instrument floor (pA class) instead.
        assert abs(point.ids) < 1e-10

    def test_sweep_shapes(self, station):
        sweep = station.sweep_ids_vgs(0.05, 300.0, points=31)
        assert sweep.vgs.shape == (31,)
        assert sweep.ids.shape == (31,)
        assert sweep.vds == pytest.approx(0.05)

    def test_pfet_sweep_reflected_to_negative_bias(self):
        silicon = perturbed_silicon(default_pfet_5nm(), seed=9)
        station = CryoProbeStation(silicon, seed=9)
        sweep = station.sweep_ids_vgs(0.05, 300.0, points=11)
        assert sweep.vds < 0.0
        assert sweep.vgs.min() < 0.0
        assert sweep.vgs.max() == pytest.approx(0.0)


class TestCalibration:
    @pytest.fixture(scope="class")
    def campaign(self, station):
        sweeps = []
        for temperature in (300.0, 200.0, 77.0, 10.0):
            for vds in (0.05, 0.75):
                sweeps.append(station.sweep_ids_vgs(vds, temperature, points=36))
        return sweeps

    @pytest.fixture(scope="class")
    def result(self, campaign):
        return calibrate(campaign, default_nfet_5nm())

    def test_fit_quality(self, result):
        # The paper reports "excellent agreement"; with our synthetic
        # instrument noise the RMS log error should be well under a
        # fifth of a decade.
        assert result.rms_log_error < 0.15

    def test_fit_beats_initial_guess(self, campaign, result):
        initial_report = validate(CryoFinFET(default_nfet_5nm()), campaign)
        fitted_report = validate(result.device(), campaign)
        assert np.mean(list(fitted_report.values())) < np.mean(list(initial_report.values()))

    def test_recovers_hidden_parameters(self, silicon, result):
        errors = parameter_recovery_error(result.params, silicon)
        # Key first-order parameters come back tightly.
        assert errors["vth0"] < 0.05
        assert errors["ideality"] < 0.10

    def test_per_sweep_report_covers_all_conditions(self, campaign, result):
        assert len(result.per_sweep_rms) == len(campaign)
        assert all(v >= 0.0 for v in result.per_sweep_rms.values())

    def test_validation_on_heldout_bias(self, station, result):
        held_out = [station.sweep_ids_vgs(0.40, 150.0, points=25)]
        report = validate(result.device(), held_out)
        assert list(report.values())[0] < 0.30

    def test_empty_sweep_list_rejected(self):
        with pytest.raises(ValueError):
            calibrate([], default_nfet_5nm())


class TestPaperCampaign:
    def test_covers_both_polarities_all_conditions(self):
        campaign = paper_measurement_campaign(temperatures=(300.0, 10.0))
        # 2 temperatures x 2 vds per polarity.
        assert len(campaign["n"]) == 4
        assert len(campaign["p"]) == 4
        n_temps = {s.temperature_setpoint for s in campaign["n"]}
        assert n_temps == {300.0, 10.0}

    def test_reproducible(self):
        a = paper_measurement_campaign(seed=1, temperatures=(300.0,))
        b = paper_measurement_campaign(seed=1, temperatures=(300.0,))
        assert np.allclose(a["n"][0].ids, b["n"][0].ids)
