"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scenario_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["synthesize", "ctrl", "-s", "fastest"])

    def test_defaults(self):
        args = build_parser().parse_args(["synthesize", "ctrl"])
        args2 = build_parser().parse_args(["characterize"])
        assert args.scenario == "p_d_a"
        assert args.temperature == 10.0
        assert args2.vdd == 0.7


class TestCommands:
    def test_benchmarks_lists_twenty(self, capsys):
        assert main(["benchmarks", "--preset", "small"]) == 0
        out = capsys.readouterr().out
        assert "adder" in out and "voter" in out
        # Header + 20 circuits.
        assert len(out.strip().splitlines()) == 21

    def test_characterize_writes_liberty(self, tmp_path, capsys):
        out = tmp_path / "lib.lib"
        assert main(["characterize", "-t", "10", "-o", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("library")
        assert "cell (INVx1)" in text

    def test_synthesize_epfl_circuit(self, tmp_path, capsys):
        verilog = tmp_path / "ctrl.v"
        report = tmp_path / "ctrl.rpt"
        code = main([
            "synthesize", "ctrl", "--preset", "small",
            "-o", str(verilog), "-r", str(report),
        ])
        assert code == 0
        assert verilog.read_text().startswith("module ctrl")
        assert "Power report" in report.read_text()

    def test_synthesize_aiger_file(self, tmp_path, capsys):
        from repro.benchgen import build_circuit
        from repro.io import write_ascii

        path = tmp_path / "circ.aag"
        path.write_text(write_ascii(build_circuit("dec", "small")))
        assert main(["synthesize", str(path), "--preset", "small"]) == 0
        out = capsys.readouterr().out
        assert "mapped:" in out

    def test_synthesize_unknown_source(self):
        with pytest.raises(SystemExit):
            main(["synthesize", "not_a_circuit_or_file"])

    def test_compare_subset(self, capsys):
        assert main(["compare", "ctrl", "dec", "--preset", "small"]) == 0
        out = capsys.readouterr().out
        assert "p_a_d" in out and "ctrl" in out and "dec" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "worst residual" in out

    def test_export_formats(self, tmp_path):
        for fmt, check in (("aag", b"aag "), ("aig", b"aig "), ("blif", b".model")):
            out = tmp_path / f"c.{fmt}"
            assert main([
                "export", "ctrl", "--preset", "small", "-f", fmt, "-o", str(out)
            ]) == 0
            assert out.read_bytes().startswith(check)

    def test_export_round_trips_through_synthesize(self, tmp_path, capsys):
        out = tmp_path / "dec.aag"
        assert main(["export", "dec", "--preset", "small", "-o", str(out)]) == 0
        assert main(["synthesize", str(out), "--preset", "small"]) == 0
        assert "mapped:" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_unknown_circuit_exits_2_with_one_line_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["synthesize", "not_a_circuit_or_file"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert len(err.strip().splitlines()) == 1

    def test_malformed_aiger_is_one_line_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.aag"
        bad.write_text("this is not an AIGER file\n")
        assert main(["synthesize", str(bad)]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_profile_prints_span_tree(self, capsys):
        assert main([
            "synthesize", "ctrl", "--preset", "small",
            "--scenario", "p_a_d", "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "flow.run" in out
        assert "flow.map" in out
        assert "top counters" in out

    def test_trace_then_report_trace(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main([
            "synthesize", "ctrl", "--preset", "small", "--trace", str(trace),
        ]) == 0
        assert trace.exists()
        capsys.readouterr()
        assert main(["report-trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "spans" in out
        assert "flow.run" in out

    def test_report_trace_missing_file_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["report-trace", "/no/such/trace.jsonl"])
        assert exc.value.code == 2

    def test_report_trace_tolerates_torn_tail(self, tmp_path, capsys):
        # A run killed mid-write leaves a partial final line; the
        # report must render everything parseable with a warning, not
        # fail (docs/OBSERVABILITY.md).
        trace = tmp_path / "run.jsonl"
        assert main([
            "synthesize", "ctrl", "--preset", "small", "--trace", str(trace),
        ]) == 0
        with open(trace, "a") as fh:
            fh.write('{"type": "span", "id": 9999, "name": "torn')
        capsys.readouterr()
        with pytest.warns(Warning, match="malformed"):
            assert main(["report-trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "flow.run" in out

    def test_report_trace_metrics_only_file(self, tmp_path, capsys):
        trace = tmp_path / "metrics-only.jsonl"
        trace.write_text('{"type": "metrics", "counters": {"cache.hit": 2}}\n')
        assert main(["report-trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "(no spans recorded)" in out
        assert "cache.hit" in out

    def test_json_result_dump(self, tmp_path, capsys):
        import json

        out = tmp_path / "result.json"
        assert main([
            "synthesize", "ctrl", "--preset", "small", "--json", str(out),
        ]) == 0
        data = json.loads(out.read_text())
        assert data["circuit"] == "ctrl"
        assert data["power"]["total_w"] > 0

    def test_calibrate_profile(self, capsys):
        assert main(["calibrate", "--seed", "7", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "calibration.fit" in out


class TestEvaluateAndCache:
    def test_evaluate_prints_table(self, capsys):
        assert main([
            "evaluate", "ctrl", "--preset", "small", "--vectors", "64",
        ]) == 0
        out = capsys.readouterr().out
        for scenario in ("baseline", "p_a_d", "p_d_a"):
            assert scenario in out
        assert "power[uW]" in out

    def test_evaluate_json_dump(self, tmp_path, capsys):
        import json

        out = tmp_path / "eval.json"
        assert main([
            "evaluate", "ctrl", "--preset", "small", "--vectors", "64",
            "--json", str(out),
        ]) == 0
        data = json.loads(out.read_text())
        assert set(data["ctrl"]) == {"baseline", "p_a_d", "p_d_a"}
        entry = data["ctrl"]["p_d_a"]
        assert entry["power"]["total_w"] > 0
        assert entry["optimization_trace"]  # satellite: trajectory in --json

    @pytest.mark.no_chaos  # byte-identity across jobs counts on no injection
    def test_evaluate_jobs_matches_serial(self, tmp_path):
        import json

        serial = tmp_path / "serial.json"
        threaded = tmp_path / "threaded.json"
        assert main([
            "evaluate", "ctrl", "--preset", "small", "--vectors", "64",
            "--jobs", "1", "--json", str(serial),
        ]) == 0
        assert main([
            "evaluate", "ctrl", "--preset", "small", "--vectors", "64",
            "--jobs", "4", "--json", str(threaded),
        ]) == 0
        assert json.loads(serial.read_text()) == json.loads(threaded.read_text())

    @pytest.mark.no_chaos  # injected cache corruption / degraded vetoes break warm hits
    def test_warm_disk_cache_skips_synthesis_and_charlib(self, tmp_path, capsys):
        """Second run against the same --cache-dir must be all cache
        hits: no characterization, no stage-1/2 synthesis, no mapping."""
        from repro.charlib.engine import _default_library_memo

        cache_dir = str(tmp_path / "cache")
        args = [
            "evaluate", "ctrl", "--preset", "small", "--vectors", "64",
            "--cache-dir", cache_dir, "--profile",
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        # The cold run does real synthesis work (profile shows only the
        # top counters, so check for the big synthesis ones).
        assert "synth." in cold

        # Drop the in-process memo so only the disk tier can satisfy
        # the library lookup, as in a fresh process.
        _default_library_memo.cache_clear()
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "cache.hit" in warm
        # No characterization work on the warm run...
        assert "charlib.cells" not in warm
        # ...and no synthesis/mapping passes either — only cached stages.
        assert "synth.rewrite" not in warm
        assert "map.matches_evaluated" not in warm

    def test_cache_dir_flag_optional_value(self):
        args = build_parser().parse_args(["evaluate", "ctrl", "--cache-dir"])
        assert args.cache_dir == "~/.cache/repro"
        args = build_parser().parse_args(["evaluate", "ctrl"])
        assert args.cache_dir is None


class TestResilienceFlags:
    FAULTS = "seed=7;charlib.measure:0.001"

    def test_faulted_evaluate_completes_and_reports_degraded(self, tmp_path, capsys):
        import json

        out = tmp_path / "eval.json"
        code = main([
            "evaluate", "ctrl", "--preset", "small", "--vectors", "64",
            "--jobs", "4", "--faults", self.FAULTS, "--json", str(out),
        ])
        assert code == 0  # degraded, but not strict -> success
        captured = capsys.readouterr()
        assert "degraded:" in captured.err
        data = json.loads(out.read_text())
        # All scenarios completed and report the degraded arcs.
        for scenario in ("baseline", "p_a_d", "p_d_a"):
            entry = data["ctrl"][scenario]
            assert entry["power"]["total_w"] > 0
            assert entry["degraded"]

    def test_strict_turns_degraded_into_exit_2(self, capsys):
        code = main([
            "evaluate", "ctrl", "--preset", "small", "--vectors", "64",
            "--strict", "--faults", self.FAULTS,
        ])
        assert code == 2
        assert "--strict" in capsys.readouterr().err

    def test_strict_without_degradation_is_exit_0(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)  # healthy-path test
        assert main([
            "evaluate", "ctrl", "--preset", "small", "--vectors", "64",
            "--strict",
        ]) == 0
        assert "degraded" not in capsys.readouterr().err

    def test_synthesize_strict_degraded_exits_2(self, capsys):
        code = main([
            "synthesize", "ctrl", "--preset", "small",
            "--strict", "--faults", self.FAULTS,
        ])
        assert code == 2

    def test_no_faults_json_identical_to_unflagged(self, tmp_path, monkeypatch):
        """An empty --faults plan must not perturb results at all."""
        import json

        monkeypatch.delenv("REPRO_FAULTS", raising=False)  # healthy-path test

        plain = tmp_path / "plain.json"
        flagged = tmp_path / "flagged.json"
        assert main([
            "evaluate", "ctrl", "--preset", "small", "--vectors", "64",
            "--json", str(plain),
        ]) == 0
        assert main([
            "evaluate", "ctrl", "--preset", "small", "--vectors", "64",
            "--faults", "seed=99", "--json", str(flagged),
        ]) == 0
        assert json.loads(plain.read_text()) == json.loads(flagged.read_text())

    def test_bad_fault_plan_is_one_line_error(self, capsys):
        assert main([
            "evaluate", "ctrl", "--preset", "small", "--faults", "s:2.0",
        ]) == 2
        assert "repro: error:" in capsys.readouterr().err


class TestCrashSafety:
    """--journal / --resume / --isolate and interrupt handling (ISSUE 4)."""

    @pytest.mark.no_chaos  # byte-identity counts on no injection
    def test_journal_then_resume_byte_identical(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        base = ["evaluate", "ctrl", "--preset", "small", "--vectors", "64"]
        assert main([*base, "--journal", str(journal), "--json", str(first)]) == 0
        capsys.readouterr()
        assert main([*base, "--resume", str(journal), "--json", str(second)]) == 0
        assert "resuming from" in capsys.readouterr().err
        assert first.read_bytes() == second.read_bytes()
        # The journal holds one committed record per scenario.
        from repro.resilience import load_records

        records, _ = load_records(journal)
        scenario_records = [r for r in records if r["kind"] == "scenario"]
        assert {r["scenario"] for r in scenario_records} == {
            "baseline", "p_a_d", "p_d_a",
        }

    def test_journal_sets_sidecar_cache_dir(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        assert main([
            "evaluate", "ctrl", "--preset", "small", "--vectors", "64",
            "--journal", str(journal),
        ]) == 0
        assert (tmp_path / "run.jsonl.cache").is_dir()

    def test_resume_missing_journal_exits_2(self, capsys):
        assert main([
            "evaluate", "ctrl", "--preset", "small",
            "--resume", "/no/such/journal.jsonl",
        ]) == 2
        assert "repro: error:" in capsys.readouterr().err

    def test_resume_with_different_config_exits_2(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        assert main([
            "evaluate", "ctrl", "--preset", "small", "--vectors", "64",
            "--journal", str(journal),
        ]) == 0
        capsys.readouterr()
        assert main([
            "evaluate", "dec", "--preset", "small", "--vectors", "64",
            "--resume", str(journal),
        ]) == 2
        assert "configuration" in capsys.readouterr().err

    def test_journal_and_resume_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "evaluate", "ctrl", "--journal", "a", "--resume", "b",
            ])

    def test_guard_violation_reported_in_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "result.json"
        assert main([
            "synthesize", "ctrl", "--preset", "small",
            "--faults", "synth.miscompile:first=1",
            "--json", str(out),
        ]) == 2
        err = capsys.readouterr().err
        assert "guard" in err.lower()
        data = json.loads(out.read_text())
        assert data["guard_violations"]
        assert any("cec" in v for v in data["guard_violations"])

    def test_interrupt_prints_resume_hint_and_exits_130(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.core

        def boom(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(repro.core, "run_scenarios", boom)
        journal = tmp_path / "run.jsonl"
        assert main([
            "evaluate", "ctrl", "--preset", "small",
            "--journal", str(journal),
        ]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume" in err
        assert str(journal) in err
        # The journal was flushed with its header despite the interrupt.
        from repro.resilience import load_records

        records, _ = load_records(journal)
        assert records and records[0]["kind"] == "run_start"

    def test_interrupt_without_journal_has_no_hint(self, capsys, monkeypatch):
        import repro.core

        def boom(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(repro.core, "run_scenarios", boom)
        assert main(["evaluate", "ctrl", "--preset", "small"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume" not in err

    @pytest.mark.no_chaos  # byte-identity counts on no injection
    def test_isolate_process_matches_thread(self, tmp_path):
        import json

        threaded = tmp_path / "thread.json"
        isolated = tmp_path / "process.json"
        base = [
            "evaluate", "ctrl", "--preset", "small", "--vectors", "64",
            "--cache-dir", str(tmp_path / "cache"), "--jobs", "2",
        ]
        assert main([*base, "--json", str(threaded)]) == 0
        assert main([
            *base, "--isolate", "process", "--json", str(isolated),
        ]) == 0
        assert json.loads(threaded.read_text()) == json.loads(isolated.read_text())


class TestKernelFlag:
    def test_parser_accepts_kernel_choices(self):
        for kernel in ("batch", "vector", "scalar"):
            args = build_parser().parse_args(["evaluate", "ctrl", "--kernel", kernel])
            assert args.kernel == kernel
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "ctrl", "--kernel", "simd"])

    def test_kernel_choice_scopes_environment(self, monkeypatch):
        import argparse
        import os

        from repro.cli import _kernel_choice

        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        with _kernel_choice(argparse.Namespace(kernel="scalar")):
            assert os.environ["REPRO_KERNEL"] == "scalar"
        assert "REPRO_KERNEL" not in os.environ

    def test_kernel_choice_restores_previous_value(self, monkeypatch):
        import argparse
        import os

        from repro.cli import _kernel_choice

        monkeypatch.setenv("REPRO_KERNEL", "vector")
        with _kernel_choice(argparse.Namespace(kernel="scalar")):
            assert os.environ["REPRO_KERNEL"] == "scalar"
        assert os.environ["REPRO_KERNEL"] == "vector"

    def test_no_flag_leaves_environment_alone(self, monkeypatch):
        import argparse
        import os

        from repro.cli import _kernel_choice

        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        with _kernel_choice(argparse.Namespace()):
            assert "REPRO_KERNEL" not in os.environ

    def test_characterize_runs_with_scalar_kernel(self, tmp_path):
        out = tmp_path / "lib.lib"
        assert main(["characterize", "-t", "10", "-o", str(out), "--kernel", "scalar"]) == 0
        assert out.read_text().startswith("library")
