"""Tests for the CDCL SAT solver."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import Solver, solve_cnf
from repro.sat.solver import _luby


def brute_force(clauses, n, extra=None):
    """Reference: does a satisfying assignment over vars 1..n exist?"""
    extra = extra or []
    for bits in range(1 << n):
        def val(lit):
            return (lit > 0) == bool((bits >> (abs(lit) - 1)) & 1)

        if all(any(val(l) for l in c) for c in clauses) and all(val(a) for a in extra):
            return True
    return False


class TestBasics:
    def test_empty_formula_sat(self):
        assert Solver().solve() is True

    def test_single_unit(self):
        s = Solver()
        s.add_clause([1])
        assert s.solve() is True
        assert s.model()[1] is True

    def test_contradiction(self):
        assert solve_cnf([[1], [-1]]) is False

    def test_empty_clause_unsat(self):
        s = Solver()
        assert s.add_clause([]) is False
        assert s.solve() is False

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            Solver().add_clause([0])

    def test_tautology_ignored(self):
        s = Solver()
        s.add_clause([1, -1])
        s.add_clause([-2])
        assert s.solve() is True

    def test_duplicate_literals_collapse(self):
        assert solve_cnf([[1, 1, 1], [-1, -1]]) is False

    def test_simple_implication_chain(self):
        s = Solver()
        s.add_clause([1])
        s.add_clause([-1, 2])
        s.add_clause([-2, 3])
        assert s.solve() is True
        model = s.model()
        assert model[1] and model[2] and model[3]


class TestPigeonhole:
    @staticmethod
    def php(pigeons, holes):
        def var(p, h):
            return p * holes + h + 1

        clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        return clauses

    def test_php_43_unsat(self):
        assert solve_cnf(self.php(4, 3)) is False

    def test_php_33_sat(self):
        assert solve_cnf(self.php(3, 3)) is True

    def test_php_54_unsat(self):
        assert solve_cnf(self.php(5, 4)) is False


class TestAssumptions:
    def test_assumption_forces_value(self):
        s = Solver()
        s.add_clause([1, 2])
        assert s.solve([-1]) is True
        assert s.model()[2] is True

    def test_conflicting_assumption(self):
        s = Solver()
        s.add_clause([1])
        assert s.solve([-1]) is False

    def test_solver_reusable_after_assumption_unsat(self):
        s = Solver()
        s.add_clause([1, 2])
        s.add_clause([-1, 3])
        assert s.solve([1, -3]) is False
        assert s.solve([2]) is True
        assert s.solve([1]) is True
        assert s.model()[3] is True

    def test_add_clause_between_queries(self):
        # Regression for the level-0 simplification bug: clauses added
        # after a query (with leftover trail) must still propagate.
        s = Solver()
        s.add_clause([1, 2])
        assert s.solve([1]) is True
        s.add_clause([-1])
        assert s.solve() is True
        assert s.model()[2] is True
        assert s.solve([1]) is False

    def test_fresh_assumption_variable(self):
        s = Solver()
        s.add_clause([1, 2])
        x = s.new_var()
        assert s.solve([x]) is True
        assert s.model()[x] is True


class TestConflictLimit:
    def test_budgeted_call_returns_none_or_answer(self):
        clauses = TestPigeonhole.php(6, 5)
        s = Solver()
        for c in clauses:
            s.add_clause(list(c))
        result = s.solve(conflict_limit=5)
        assert result in (None, False)

    def test_unbudgeted_call_completes(self):
        clauses = TestPigeonhole.php(5, 4)
        assert solve_cnf(clauses) is False


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestRandomized:
    def test_agrees_with_brute_force(self):
        rng = random.Random(42)
        for _ in range(120):
            n = rng.randint(3, 8)
            m = rng.randint(3, 30)
            clauses = [
                [rng.choice([1, -1]) * rng.randint(1, n) for _ in range(3)]
                for _ in range(m)
            ]
            assert solve_cnf(clauses) == brute_force(clauses, n)

    def test_incremental_agrees_with_brute_force(self):
        rng = random.Random(7)
        for _ in range(40):
            n = rng.randint(3, 6)
            m = rng.randint(4, 20)
            clauses = [
                [rng.choice([1, -1]) * rng.randint(1, n) for _ in range(3)]
                for _ in range(m)
            ]
            s = Solver()
            for c in clauses:
                s.add_clause(list(c))
            for _ in range(4):
                assum = [rng.choice([1, -1]) * rng.randint(1, n)]
                got = s.solve(assumptions=assum)
                assert got == brute_force(clauses, n, extra=assum)

    def test_model_satisfies_formula(self):
        rng = random.Random(3)
        for _ in range(60):
            n = rng.randint(3, 8)
            m = rng.randint(3, 25)
            clauses = [
                [rng.choice([1, -1]) * rng.randint(1, n) for _ in range(3)]
                for _ in range(m)
            ]
            s = Solver()
            ok = all(s.add_clause(list(c)) for c in clauses)
            if ok and s.solve() is True:
                model = s.model()
                for clause in clauses:
                    assert any(
                        model.get(abs(l), False) == (l > 0) for l in clause
                    ), (clauses, model)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.lists(st.integers(min_value=-5, max_value=5).filter(lambda x: x != 0),
                 min_size=1, max_size=4),
        min_size=1, max_size=15,
    ))
    def test_hypothesis_agrees_with_brute_force(self, clauses):
        n = max(abs(l) for c in clauses for l in c)
        assert solve_cnf([list(c) for c in clauses]) == brute_force(clauses, n)
