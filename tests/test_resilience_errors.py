"""Error taxonomy: classification, compatibility, and the retry ladder."""

import pytest

from repro import obs
from repro.resilience import (
    CacheCorruptionError,
    CalibrationError,
    DegradedError,
    InjectedFaultError,
    MeasurementError,
    ParallelExecutionError,
    PermanentError,
    ReproError,
    StageTimeoutError,
    TimeoutExceeded,
    TransientError,
    classify,
    is_transient,
    run_ladder,
)
from repro.resilience.errors import DEGRADED, PERMANENT, TRANSIENT


class TestTaxonomy:
    def test_classifications(self):
        assert classify(TransientError("x")) == TRANSIENT
        assert classify(PermanentError("x")) == PERMANENT
        assert classify(DegradedError("x")) == DEGRADED
        assert classify(ReproError("x")) == PERMANENT

    def test_foreign_exceptions_default_permanent(self):
        assert classify(ValueError("x")) == PERMANENT
        assert classify(KeyboardInterrupt()) == PERMANENT
        assert not is_transient(RuntimeError("x"))

    def test_bogus_classification_attribute_is_permanent(self):
        exc = RuntimeError("x")
        exc.classification = "whatever"
        assert classify(exc) == PERMANENT

    def test_site_carried(self):
        exc = TransientError("boom", site="spice.newton")
        assert exc.site == "spice.newton"
        assert TransientError("boom").site is None

    def test_domain_errors_are_transient(self):
        for cls in (
            CacheCorruptionError,
            MeasurementError,
            InjectedFaultError,
            TimeoutExceeded,
            StageTimeoutError,
        ):
            assert is_transient(cls("x")), cls

    def test_timeout_carries_budget(self):
        exc = TimeoutExceeded("late", timeout_s=2.5)
        assert exc.timeout_s == 2.5

    def test_calibration_error_still_a_valueerror(self):
        with pytest.raises(ValueError):
            raise CalibrationError("bad fit")

    def test_convergence_error_still_a_runtimeerror(self):
        from repro.spice.engine import ConvergenceError

        assert issubclass(ConvergenceError, RuntimeError)
        assert is_transient(ConvergenceError("no convergence"))


class TestParallelExecutionError:
    def test_all_transient_components_make_aggregate_transient(self):
        agg = ParallelExecutionError(
            "2 failed",
            errors=[(0, "a", TransientError("x")), (1, "b", MeasurementError("y"))],
        )
        assert is_transient(agg)
        assert len(agg.errors) == 2

    def test_any_permanent_component_makes_aggregate_permanent(self):
        agg = ParallelExecutionError(
            "2 failed",
            errors=[(0, "a", TransientError("x")), (1, "b", ValueError("y"))],
        )
        assert not is_transient(agg)


class TestRunLadder:
    def test_first_rung_success_is_silent(self):
        with obs.Tracer() as tracer:
            result = run_ladder("test.site", ("a", "b"), lambda i, rung: rung)
        assert result == "a"
        assert "resilience.retry" not in tracer.counters

    def test_advances_on_transient_and_counts(self):
        attempts = []

        def flaky(index, rung):
            attempts.append((index, rung))
            if index < 2:
                raise TransientError("not yet")
            return rung

        with obs.Tracer() as tracer:
            result = run_ladder("test.site", ("a", "b", "c"), flaky)
        assert result == "c"
        assert attempts == [(0, "a"), (1, "b"), (2, "c")]
        assert tracer.counters["resilience.retry"] == 2
        assert tracer.counters["resilience.retry.test.site"] == 2
        assert tracer.counters["resilience.retry.test.site.rung1"] == 1
        assert tracer.counters["resilience.retry.test.site.rung2"] == 1
        assert tracer.counters["resilience.recovered.test.site"] == 1

    def test_exhaustion_reraises_last_and_counts(self):
        def always(index, rung):
            raise TransientError(f"rung {index}")

        with obs.Tracer() as tracer:
            with pytest.raises(TransientError, match="rung 2"):
                run_ladder("test.site", (1, 2, 3), always)
        assert tracer.counters["resilience.exhausted.test.site"] == 1
        assert "resilience.recovered.test.site" not in tracer.counters

    def test_non_retryable_propagates_immediately(self):
        attempts = []

        def fail_hard(index, rung):
            attempts.append(index)
            raise ValueError("config, not convergence")

        with pytest.raises(ValueError):
            run_ladder("test.site", (1, 2, 3), fail_hard)
        assert attempts == [0]

    def test_custom_retry_on(self):
        def raises_runtime(index, rung):
            if index == 0:
                raise RuntimeError("legacy error")
            return rung

        result = run_ladder(
            "test.site", ("a", "b"), raises_runtime, retry_on=RuntimeError
        )
        assert result == "b"

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            run_ladder("test.site", (), lambda i, r: r)
