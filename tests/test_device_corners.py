"""Tests for PVT corner modeling."""

import pytest

from repro.charlib import characterize_library
from repro.device import CryoFinFET, default_nfet_5nm, default_pfet_5nm
from repro.device.corners import (
    corner_technology,
    make_corner,
    skew_device,
    standard_corner_set,
)
from repro.pdk.catalog import make_inv


NFET = default_nfet_5nm()
PFET = default_pfet_5nm()


class TestSkews:
    def test_tt_identity(self):
        assert skew_device(NFET, "tt") == NFET

    def test_ss_slower(self):
        ss = skew_device(NFET, "ss")
        assert ss.vth0 > NFET.vth0
        assert ss.mu_phonon_300 < NFET.mu_phonon_300

    def test_ff_faster_and_leakier(self):
        ff = CryoFinFET(skew_device(NFET, "ff"))
        tt = CryoFinFET(NFET)
        assert ff.on_current(0.7, 300.0) > tt.on_current(0.7, 300.0)
        assert ff.off_current(0.7, 300.0) > tt.off_current(0.7, 300.0)

    def test_unknown_corner_rejected(self):
        with pytest.raises(ValueError):
            skew_device(NFET, "sf")


class TestCornerConstruction:
    def test_make_corner_validates(self):
        with pytest.raises(ValueError):
            make_corner("x", NFET, PFET, vdd=0.0)
        with pytest.raises(ValueError):
            make_corner("x", NFET, PFET, temperature=-1.0)

    def test_standard_set_names(self):
        corners = standard_corner_set(NFET, PFET)
        assert set(corners) == {
            "wc_delay", "typical", "wc_leakage",
            "cryo_typical", "cryo_wc_delay", "cryo_bc_delay",
        }
        assert corners["cryo_typical"].temperature == 10.0
        assert corners["wc_delay"].vdd < corners["typical"].vdd

    def test_corner_technology_carries_conditions(self):
        corner = make_corner("t", NFET, PFET, "ss", vdd=0.65, temperature=10.0)
        tech = corner_technology(corner)
        assert tech.vdd == pytest.approx(0.65)
        assert tech.nfet.vth0 == pytest.approx(NFET.vth0 + 0.03)


class TestCornerCharacterization:
    def test_wc_delay_slower_than_typical(self):
        corners = standard_corner_set(NFET, PFET)
        cells = [make_inv(1)]
        slow = characterize_library(
            corner_technology(corners["wc_delay"]),
            corners["wc_delay"].temperature,
            cells=cells,
        )
        typical = characterize_library(
            corner_technology(corners["typical"]),
            corners["typical"].temperature,
            cells=cells,
        )
        assert slow["INVx1"].typical_delay() > typical["INVx1"].typical_delay()

    def test_cryo_corners_all_low_leakage(self):
        corners = standard_corner_set(NFET, PFET)
        cells = [make_inv(1)]
        for name in ("cryo_typical", "cryo_wc_delay", "cryo_bc_delay"):
            corner = corners[name]
            library = characterize_library(
                corner_technology(corner), corner.temperature, cells=cells
            )
            assert library["INVx1"].leakage_average < 1e-10, name

    def test_classical_wc_leakage_is_leaky(self):
        corners = standard_corner_set(NFET, PFET)
        cells = [make_inv(1)]
        leaky = characterize_library(
            corner_technology(corners["wc_leakage"]),
            corners["wc_leakage"].temperature,
            cells=cells,
        )
        typical = characterize_library(
            corner_technology(corners["typical"]), 300.0, cells=cells
        )
        assert leaky["INVx1"].leakage_average > 3.0 * typical["INVx1"].leakage_average
