"""Differential tests pinning the vector kernel to the scalar reference.

Every circuit is solved twice — once with ``SimulatorSettings
(kernel="scalar")`` (the per-element reference loops) and once with
``kernel="vector"`` (the batched stamper) — and the solutions must
agree to ≤1e-9 relative on every node voltage.  DC sweeps and
transients are additionally compared through the rounded-waveform
digest (:func:`repro.spice.waveform_digest`), the same primitive the
golden-file regressions use.

The whole module is ``no_chaos``: fault injection draws from a shared
stream whose position depends on call ordering, so injected Newton
perturbations would hit the two kernel paths at different points and
the comparison would measure the fault plan, not the kernels.
"""

import numpy as np
import pytest

from repro.device import CryoFinFET, default_nfet_5nm, default_pfet_5nm
from repro import obs
from repro.spice import (
    DC,
    Circuit,
    Simulator,
    SimulatorSettings,
    default_kernel,
    pulse,
    ramp,
    waveform_digest,
)

pytestmark = pytest.mark.no_chaos

VDD = 0.7
TEMPERATURES = (300.0, 77.0, 10.0)
RTOL = 1e-9

#: Digest quantization for *cross-kernel* comparison.  The measured
#: scalar-vs-vector divergence is ~3e-14 V (different FP summation
#: order); hashing at 1 µV makes a rounding-boundary straddle
#: astronomically unlikely while the 1e-9 agreement is asserted
#: directly with allclose.  Same-kernel reproducibility digests (the
#: golden files) use the default 1 nV grid.
DIGEST_DECIMALS = 6

SCALAR = SimulatorSettings(kernel="scalar")
VECTOR = SimulatorSettings(kernel="vector")


# ---------------------------------------------------------------------------
# Circuit builders.  Each returns a fresh Circuit (Simulator instances
# cache stampers per circuit+temperature, so the two paths each get
# their own build).


def inverter():
    c = Circuit("inv")
    c.add_vsource("vdd", "vdd", "0", DC(VDD))
    c.add_vsource("vin", "a", "0", ramp(2e-11, 2e-11, 0.0, VDD))
    c.add_finfet("mp", "y", "a", "vdd", CryoFinFET(default_pfet_5nm(nfin=3)))
    c.add_finfet("mn", "y", "a", "0", CryoFinFET(default_nfet_5nm(nfin=2)))
    c.add_capacitor("cl", "y", "0", 1e-15)
    return c


def nand2():
    """Two series NFETs — exercises a FET with neither terminal grounded."""
    c = Circuit("nand2")
    c.add_vsource("vdd", "vdd", "0", DC(VDD))
    c.add_vsource("va", "a", "0", pulse(0.0, VDD, 1e-11, 1e-11, 1e-10, 1e-11))
    c.add_vsource("vb", "b", "0", DC(VDD))
    c.add_finfet("mpa", "y", "a", "vdd", CryoFinFET(default_pfet_5nm(nfin=2)))
    c.add_finfet("mpb", "y", "b", "vdd", CryoFinFET(default_pfet_5nm(nfin=2)))
    c.add_finfet("mna", "y", "a", "mid", CryoFinFET(default_nfet_5nm(nfin=3)))
    c.add_finfet("mnb", "mid", "b", "0", CryoFinFET(default_nfet_5nm(nfin=3)))
    c.add_capacitor("cl", "y", "0", 2e-15)
    return c


def rc_ladder():
    """Linear-only circuit: the FET batch is empty in the vector path."""
    c = Circuit("rc")
    c.add_vsource("vin", "in", "0", ramp(1e-12, 5e-12, 0.0, 1.0))
    prev = "in"
    for i in range(4):
        node = f"n{i}"
        c.add_resistor(f"r{i}", prev, node, 1e3 * (i + 1))
        c.add_capacitor(f"c{i}", node, "0", 1e-13)
        prev = node
    c.add_resistor("rload", prev, "0", 5e3)
    return c


def random_circuit(seed):
    """Random FET/R/C mesh over a small node set, always biased by vdd.

    Devices are drawn with a seeded RNG so failures reproduce; every
    node keeps a resistive path to ground (gmin plus the mesh) and the
    FET count/fin counts vary per seed.
    """
    rng = np.random.default_rng(seed)
    c = Circuit(f"rand{seed}")
    c.add_vsource("vdd", "vdd", "0", DC(VDD))
    c.add_vsource("vin", "a", "0", ramp(1e-11, 3e-11, 0.0, VDD))
    nodes = ["vdd", "a", "0", "n0", "n1", "n2"]
    for i in range(int(rng.integers(2, 5))):
        d, s = rng.choice(["n0", "n1", "n2"], size=2, replace=False)
        g = rng.choice(["a", "n0", "n1"])
        if rng.random() < 0.5:
            fet = CryoFinFET(default_pfet_5nm(nfin=int(rng.integers(1, 4))))
            c.add_finfet(f"mp{i}", d, g, "vdd", fet)
        else:
            fet = CryoFinFET(default_nfet_5nm(nfin=int(rng.integers(1, 4))))
            c.add_finfet(f"mn{i}", d, g, s, fet)
    for i in range(int(rng.integers(2, 5))):
        a, b = rng.choice(nodes, size=2, replace=False)
        c.add_resistor(f"r{i}", a, b, float(rng.uniform(1e3, 1e5)))
    for i, node in enumerate(("n0", "n1", "n2")):
        c.add_resistor(f"rg{i}", node, "0", 1e6)
        c.add_capacitor(f"cg{i}", node, "0", float(rng.uniform(0.5e-15, 3e-15)))
    return c


BUILDERS = [inverter, nand2, rc_ladder] + [
    (lambda s=s: random_circuit(s)) for s in range(4)
]


def _node_voltages(op):
    return np.array([op.voltages[n] for n in sorted(op.voltages)])


# ---------------------------------------------------------------------------


class TestDifferentialDC:
    @pytest.mark.parametrize("temperature", TEMPERATURES)
    @pytest.mark.parametrize("build", BUILDERS, ids=lambda b: b().name)
    def test_operating_point_agrees(self, build, temperature):
        op_s = Simulator(build(), temperature, settings=SCALAR).dc_operating_point()
        op_v = Simulator(build(), temperature, settings=VECTOR).dc_operating_point()
        vs, vv = _node_voltages(op_s), _node_voltages(op_v)
        np.testing.assert_allclose(vv, vs, rtol=RTOL, atol=RTOL * VDD)

    @pytest.mark.parametrize("temperature", TEMPERATURES)
    def test_dc_sweep_arrays_agree(self, temperature):
        values = np.linspace(0.0, VDD, 21)
        states = {}
        for settings in (SCALAR, VECTOR):
            sim = Simulator(inverter(), temperature, settings=settings)
            states[settings.kernel] = sim.dc_sweep_arrays("vin", values)
        np.testing.assert_allclose(
            states["vector"], states["scalar"], rtol=RTOL, atol=RTOL * VDD
        )
        # Rounded to the cross-kernel digest grid the sweeps are identical.
        a, b = (np.round(states[k], DIGEST_DECIMALS) for k in ("scalar", "vector"))
        assert np.array_equal(a, b)


class TestDifferentialTransient:
    @pytest.mark.parametrize("temperature", TEMPERATURES)
    @pytest.mark.parametrize("build", BUILDERS, ids=lambda b: b().name)
    def test_waveform_digest_matches(self, build, temperature):
        res_s = Simulator(build(), temperature, settings=SCALAR).transient(2e-10, 2e-12)
        res_v = Simulator(build(), temperature, settings=VECTOR).transient(2e-10, 2e-12)
        assert waveform_digest(res_v, decimals=DIGEST_DECIMALS) == waveform_digest(
            res_s, decimals=DIGEST_DECIMALS
        )

    def test_node_waveforms_within_tolerance(self):
        res_s = Simulator(inverter(), 77.0, settings=SCALAR).transient(3e-10, 1e-12)
        res_v = Simulator(inverter(), 77.0, settings=VECTOR).transient(3e-10, 1e-12)
        for node in res_s.voltages:
            np.testing.assert_allclose(
                res_v.voltage(node),
                res_s.voltage(node),
                rtol=RTOL,
                atol=RTOL * VDD,
                err_msg=f"node {node}",
            )


class TestKernelSelection:
    def test_default_kernel_is_batch(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert default_kernel() == "batch"
        assert SimulatorSettings().kernel == "batch"

    def test_env_selects_scalar(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        assert SimulatorSettings().kernel == "scalar"

    def test_env_selects_vector(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        assert SimulatorSettings().kernel == "vector"

    def test_env_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "simd")
        with pytest.raises(ValueError):
            default_kernel()

    def test_settings_reject_unknown(self):
        with pytest.raises(ValueError):
            SimulatorSettings(kernel="turbo")

    def test_explicit_settings_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        assert SimulatorSettings(kernel="vector").kernel == "vector"

    @pytest.mark.parametrize("kernel", ["scalar", "vector"])
    def test_obs_counter_tracks_kernel_path(self, kernel):
        settings = SimulatorSettings(kernel=kernel)
        with obs.Tracer() as tracer:
            Simulator(inverter(), 300.0, settings=settings).dc_operating_point()
        assert tracer.counters.get(f"spice.kernel.{kernel}", 0) > 0
        other = "vector" if kernel == "scalar" else "scalar"
        assert tracer.counters.get(f"spice.kernel.{other}", 0) == 0
