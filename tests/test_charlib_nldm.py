"""Tests for NLDM tables and library structures."""

import pytest
from hypothesis import given, strategies as st

from repro.charlib import NLDMTable


def simple_table():
    return NLDMTable(
        slews=(1e-12, 2e-12, 4e-12),
        loads=(1e-15, 2e-15),
        values=((1.0, 2.0), (2.0, 4.0), (4.0, 8.0)),
    )


class TestNLDMTable:
    def test_exact_grid_points(self):
        t = simple_table()
        assert t.lookup(1e-12, 1e-15) == pytest.approx(1.0)
        assert t.lookup(4e-12, 2e-15) == pytest.approx(8.0)

    def test_bilinear_midpoint(self):
        t = simple_table()
        assert t.lookup(1.5e-12, 1.5e-15) == pytest.approx((1 + 2 + 2 + 4) / 4)

    def test_clamped_extrapolation(self):
        t = simple_table()
        assert t.lookup(1e-15, 1e-18) == pytest.approx(1.0)
        assert t.lookup(1.0, 1.0) == pytest.approx(8.0)

    def test_from_function(self):
        t = NLDMTable.from_function(
            (1.0, 2.0), (10.0, 20.0), lambda s, l: s + l
        )
        assert t.values == ((11.0, 21.0), (12.0, 22.0))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            NLDMTable((1.0, 2.0), (1.0,), ((1.0,),))
        with pytest.raises(ValueError):
            NLDMTable((1.0, 2.0), (1.0,), ((1.0,), (2.0, 3.0)))

    def test_axis_monotonicity_enforced(self):
        with pytest.raises(ValueError):
            NLDMTable((2.0, 1.0), (1.0,), ((1.0,), (2.0,)))
        with pytest.raises(ValueError):
            NLDMTable((1.0, 2.0), (2.0, 2.0), ((1.0, 1.0), (2.0, 2.0)))

    def test_min_max_mid(self):
        t = simple_table()
        assert t.min_value() == 1.0
        assert t.max_value() == 8.0
        assert t.mid_value() == pytest.approx(t.lookup(2e-12, 2e-15))

    @given(
        s=st.floats(min_value=0.5e-12, max_value=8e-12),
        l=st.floats(min_value=0.5e-15, max_value=4e-15),
    )
    def test_lookup_within_table_range(self, s, l):
        t = simple_table()
        value = t.lookup(s, l)
        assert t.min_value() - 1e-12 <= value <= t.max_value() + 1e-12

    @given(
        s1=st.floats(min_value=1e-12, max_value=4e-12),
        s2=st.floats(min_value=1e-12, max_value=4e-12),
    )
    def test_monotone_when_values_monotone(self, s1, s2):
        t = simple_table()
        lo, hi = sorted((s1, s2))
        assert t.lookup(lo, 1.5e-15) <= t.lookup(hi, 1.5e-15) + 1e-12
