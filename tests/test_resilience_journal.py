"""Run journal: write-ahead semantics, torn tails, resume replay.

The headline contract (ISSUE 4): a sweep killed mid-run and resumed
from its journal produces a final report *byte-identical* to an
uninterrupted run's.
"""

import json

import pytest

from repro.benchgen import build_circuit
from repro.core import ArtifactCache, DesignContext, run_scenarios, using_cache
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
    JournalError,
    JournalLockedError,
    JournalMismatchError,
    RunJournal,
    artifact_digest,
    injecting,
    load_records,
)
from repro.charlib.engine import default_library


@pytest.fixture(scope="module")
def library():
    return default_library(10.0)


class TestRecordRoundtrip:
    def test_create_record_iterate(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.create(path, {"cmd": "evaluate"}) as journal:
            journal.record("scenario", key="k1", digest="d1")
            journal.record("scenario", key="k2", digest="d2")
        records = list(RunJournal.resume(path, {"cmd": "evaluate"}))
        assert [r["kind"] for r in records] == ["run_start", "scenario", "scenario"]
        assert records[0]["version"] == 1

    def test_records_are_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.create(path) as journal:
            journal.record("scenario", key="k", digest="d")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(isinstance(json.loads(line), dict) for line in lines)

    def test_completed_scenarios_maps_key_to_digest(self, tmp_path):
        with RunJournal.create(tmp_path / "j") as journal:
            journal.record("scenario", key="k1", digest="d1")
            journal.record("stage", name="c2rs", key="s1", digest="x")
            assert journal.completed_scenarios() == {"k1": "d1"}

    def test_record_after_close_raises(self, tmp_path):
        journal = RunJournal.create(tmp_path / "j")
        journal.close()
        with pytest.raises(JournalError):
            journal.record("scenario", key="k", digest="d")


class TestTornTail:
    def test_torn_final_line_is_dropped_and_truncated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.create(path) as journal:
            journal.record("scenario", key="k1", digest="d1")
        with open(path, "a") as fh:
            fh.write('{"kind": "scenario", "key": "k2"')  # no newline: torn
        records, good = load_records(path)
        assert [r["kind"] for r in records] == ["run_start", "scenario"]
        assert good < path.stat().st_size
        resumed = RunJournal.resume(path)
        assert path.stat().st_size == good  # tail truncated away
        resumed.record("scenario", key="k3", digest="d3")
        resumed.close()
        records, good = load_records(path)
        assert [r.get("key") for r in records] == [None, "k1", "k3"]
        assert good == path.stat().st_size

    def test_undecodable_middle_line_stops_parsing(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            '{"kind": "run_start", "version": 1, "config": null}\n'
            "garbage garbage\n"
            '{"kind": "scenario", "key": "k"}\n'
        )
        records, good = load_records(path)
        assert len(records) == 1  # everything after the bad line is lost


class TestResumeValidation:
    def test_missing_journal(self, tmp_path):
        with pytest.raises(JournalError, match="no such journal"):
            RunJournal.resume(tmp_path / "absent.jsonl")

    def test_not_a_journal(self, tmp_path):
        path = tmp_path / "junk"
        path.write_text('{"kind": "scenario"}\n')
        with pytest.raises(JournalError, match="missing header"):
            RunJournal.resume(path)

    def test_config_mismatch_refused(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal.create(path, {"circuits": ["ctrl"]}).close()
        with pytest.raises(JournalMismatchError, match="different run configuration"):
            RunJournal.resume(path, {"circuits": ["adder"]})

    def test_newer_format_refused(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "run_start", "version": 99, "config": null}\n')
        with pytest.raises(JournalMismatchError, match="journal format"):
            RunJournal.resume(path)

    def test_resume_without_config_accepts_any(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal.create(path, {"circuits": ["ctrl"]}).close()
        assert RunJournal.resume(path).records


class TestWriterLock:
    """Exactly one live writer per journal path (ISSUE 8 satellite)."""

    def test_second_create_refused_while_first_writes(self, tmp_path):
        path = tmp_path / "run.jsonl"
        first = RunJournal.create(path, {"cmd": "serve"})
        try:
            first.record("job_submit", key="k1")
            with pytest.raises(JournalLockedError, match="already open"):
                RunJournal.create(path, {"cmd": "serve"})
            # The loser did not truncate the live writer's records.
            assert [r["kind"] for r in load_records(path)[0]] == \
                ["run_start", "job_submit"]
        finally:
            first.close()

    def test_resume_refused_while_writer_is_live(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.create(path) as journal:
            journal.record("scenario", key="k", digest="d")
            with pytest.raises(JournalLockedError):
                RunJournal.resume(path)

    def test_close_releases_the_lock(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal.create(path).close()
        assert not (tmp_path / "run.jsonl.lock").exists()
        with RunJournal.resume(path) as journal:  # no error
            journal.record("scenario", key="k", digest="d")

    def test_stale_lock_from_dead_pid_is_reclaimed(self, tmp_path):
        # The kill -9 the journal exists to survive leaves the lock
        # file behind; a pid that no longer runs must not wedge resume.
        path = tmp_path / "run.jsonl"
        RunJournal.create(path).close()
        (tmp_path / "run.jsonl.lock").write_text("999999999\n")
        with RunJournal.resume(path) as journal:
            journal.record("scenario", key="k", digest="d")
        assert not (tmp_path / "run.jsonl.lock").exists()

    def test_garbage_lock_file_is_reclaimed(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal.create(path).close()
        (tmp_path / "run.jsonl.lock").write_text("not-a-pid\n")
        with RunJournal.resume(path):
            pass


class TestCrashSite:
    def test_journal_crash_fires_after_commit(self, tmp_path):
        path = tmp_path / "run.jsonl"
        plan = FaultPlan([FaultSpec("journal.crash", first_n=1, after=1)], seed=0)
        with injecting(plan):
            journal = RunJournal.create(path)  # after=1 skips the header
            with pytest.raises(InjectedCrashError):
                journal.record("scenario", key="k1", digest="d1")
            journal.close()
        # The record the crash interrupted *was* committed first.
        records, _ = load_records(path)
        assert records[-1] == {"kind": "scenario", "key": "k1", "digest": "d1"}


class TestResumeDeterminism:
    """Kill after the first scenario; resume; outputs byte-identical."""

    def _report(self, results) -> bytes:
        return json.dumps(
            {s: r.to_dict() for s, r in results.items()}, indent=2
        ).encode()

    def test_killed_and_resumed_sweep_matches_uninterrupted(
        self, tmp_path, library
    ):
        aig = build_circuit("ctrl", "small")
        scenarios = ["baseline", "p_d_a"]

        # Reference: uninterrupted run, no journal.
        with using_cache(ArtifactCache()):
            context = DesignContext.from_library(library)
            reference = self._report(
                run_scenarios(aig, context=context, scenarios=scenarios)
            )

        # Interrupted run: die right after stage 1's journal record
        # commits (after=1 skips the run_start header commit) — the
        # stage output is already in the disk cache at that point.
        cache_dir = tmp_path / "cache"
        path = tmp_path / "run.jsonl"
        config = {"circuits": ["ctrl"]}
        plan = FaultPlan([FaultSpec("journal.crash", first_n=1, after=1)], seed=0)
        with using_cache(ArtifactCache(cache_dir=cache_dir)):
            context = DesignContext.from_library(library)
            with injecting(plan), RunJournal.create(path, config) as journal:
                with pytest.raises(InjectedCrashError):
                    run_scenarios(
                        aig, context=context, scenarios=scenarios, journal=journal
                    )
            committed = [r["kind"] for r in journal.records]
            assert committed[:2] == ["run_start", "stage"]
            assert "scenario" not in committed  # died mid-sweep

        # Resume in a *fresh* cache process-alike (only the disk tier
        # survives a real kill -9) and finish the sweep.
        with using_cache(ArtifactCache(cache_dir=cache_dir)):
            context = DesignContext.from_library(library)
            with RunJournal.resume(path, config) as journal:
                resumed = run_scenarios(
                    aig, context=context, scenarios=scenarios, journal=journal
                )
            assert len(journal.completed_scenarios()) == len(scenarios)
        assert self._report(resumed) == reference

    def test_replay_skips_recomputation(self, tmp_path, library):
        aig = build_circuit("ctrl", "small")
        path = tmp_path / "run.jsonl"
        with using_cache(ArtifactCache(cache_dir=tmp_path / "cache")):
            context = DesignContext.from_library(library)
            with RunJournal.create(path) as journal:
                first = run_scenarios(
                    aig, context=context, scenarios=["baseline"], journal=journal
                )
            with RunJournal.resume(path) as journal:
                again = run_scenarios(
                    aig, context=context, scenarios=["baseline"], journal=journal
                )
            # Replay returns the cached object, not a recomputation,
            # and journals no duplicate scenario record.
            assert artifact_digest(again["baseline"]) == artifact_digest(
                first["baseline"]
            )
            assert len(journal.completed_scenarios()) == 1

    def test_digest_mismatch_forces_recompute(self, tmp_path, library):
        aig = build_circuit("ctrl", "small")
        path = tmp_path / "run.jsonl"
        with using_cache(ArtifactCache(cache_dir=tmp_path / "cache")):
            context = DesignContext.from_library(library)
            with RunJournal.create(path) as journal:
                run_scenarios(
                    aig, context=context, scenarios=["baseline"], journal=journal
                )
        # Same journal, different (empty) cache: digests cannot match,
        # so the scenario recomputes instead of trusting stale records.
        with using_cache(ArtifactCache()):
            context = DesignContext.from_library(library)
            with RunJournal.resume(path) as journal:
                results = run_scenarios(
                    aig, context=context, scenarios=["baseline"], journal=journal
                )
        assert results["baseline"].num_gates > 0
