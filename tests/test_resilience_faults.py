"""Fault-injection harness: determinism, parsing, and activation."""

import math

import pytest

from repro import obs
from repro.resilience import FaultPlan, FaultSpec, faults, injecting, parse_plan


class TestDeterminism:
    def test_same_seed_same_firing_sequence(self):
        def sequence(seed):
            plan = FaultPlan([FaultSpec("s", probability=0.3)], seed=seed)
            return [plan.should_fire("s") for _ in range(200)]

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)

    def test_sites_independent(self):
        """Interleaving checks of another site must not shift a site's draws."""
        alone = FaultPlan(
            [FaultSpec("a", probability=0.3)], seed=1
        )
        solo = [alone.should_fire("a") for _ in range(50)]
        mixed_plan = FaultPlan(
            [FaultSpec("a", probability=0.3), FaultSpec("b", probability=0.5)], seed=1
        )
        mixed = []
        for _ in range(50):
            mixed_plan.should_fire("b")
            mixed.append(mixed_plan.should_fire("a"))
        assert solo == mixed

    def test_probability_rate_roughly_matches(self):
        plan = FaultPlan([FaultSpec("s", probability=0.2)], seed=42)
        fired = sum(plan.should_fire("s") for _ in range(2000))
        assert 300 < fired < 500  # 0.2 +- generous tolerance

    def test_unknown_site_never_fires(self):
        plan = FaultPlan([FaultSpec("s", probability=1.0)], seed=0)
        assert not plan.should_fire("other")


class TestSpecSemantics:
    def test_first_n_rigs_exactly_n_failures(self):
        plan = FaultPlan([FaultSpec("s", first_n=3)], seed=0)
        assert [plan.should_fire("s") for _ in range(5)] == [
            True, True, True, False, False,
        ]

    def test_max_fires_caps_total(self):
        plan = FaultPlan([FaultSpec("s", probability=1.0, max_fires=2)], seed=0)
        assert sum(plan.should_fire("s") for _ in range(10)) == 2

    def test_depth_controls_retry_attempts(self):
        # depth=2: first two attempts (rungs 0 and 1) fail, rung 2 succeeds.
        plan = FaultPlan([FaultSpec("s", first_n=1, depth=2)], seed=0)
        assert plan.should_fire("s", attempt=0)
        assert plan.should_fire("s", attempt=1)
        assert not plan.should_fire("s", attempt=2)

    def test_fires_accounting_and_counters(self):
        plan = FaultPlan([FaultSpec("s", first_n=2)], seed=0)
        with obs.Tracer() as tracer:
            for _ in range(4):
                plan.should_fire("s")
        assert plan.fires() == {"s": 2}
        assert tracer.counters["faults.injected"] == 2
        assert tracer.counters["faults.injected.s"] == 2


class TestParsing:
    def test_full_plan(self):
        plan = parse_plan(
            "seed=2023; spice.newton:0.1:depth=2, cache.disk:first=1:max=3"
        )
        assert plan.seed == 2023
        newton = plan.specs["spice.newton"]
        assert newton.probability == 0.1
        assert newton.depth == 2
        disk = plan.specs["cache.disk"]
        assert disk.probability == 0.0
        assert disk.first_n == 1
        assert disk.max_fires == 3

    def test_empty_plan(self):
        plan = parse_plan("")
        assert plan.specs == {}

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            parse_plan("s:1.5")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError):
            parse_plan("speed=3")


class TestActivation:
    def test_no_plan_is_inert(self):
        assert not faults.should_fire("spice.newton")
        assert faults.corrupt_value("charlib.measure", 1.25) == 1.25
        assert faults.corrupt_bytes("cache.disk", b"abcd") == b"abcd"

    def test_injecting_scopes_the_plan(self):
        plan = FaultPlan([FaultSpec("s", first_n=1)], seed=0)
        with injecting(plan):
            assert faults.active_plan() is plan
            assert faults.should_fire("s")
        assert faults.active_plan() is not plan
        assert not faults.should_fire("s")

    def test_injecting_nests(self):
        outer = FaultPlan([FaultSpec("a", first_n=1)])
        inner = FaultPlan([FaultSpec("b", first_n=1)])
        with injecting(outer):
            with injecting(inner):
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer

    def test_env_var_plan(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "s:first=1")
        plan = faults.active_plan()
        assert plan is not None
        assert plan.specs["s"].first_n == 1
        # Cached: same string -> same plan object (counters persist).
        assert faults.active_plan() is plan
        monkeypatch.setenv(faults.ENV_VAR, "s:first=2")
        assert faults.active_plan().specs["s"].first_n == 2
        monkeypatch.delenv(faults.ENV_VAR)
        assert faults.active_plan() is None

    def test_explicit_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "env.site:1.0")
        explicit = FaultPlan([FaultSpec("x", first_n=1)])
        with injecting(explicit):
            assert faults.active_plan() is explicit


class TestCorruptionHelpers:
    def test_corrupt_value_nans(self):
        plan = FaultPlan([FaultSpec("s", first_n=1)])
        with injecting(plan):
            assert math.isnan(faults.corrupt_value("s", 3.0))
            assert faults.corrupt_value("s", 3.0) == 3.0

    def test_corrupt_bytes_truncates(self):
        plan = FaultPlan([FaultSpec("s", first_n=1)])
        with injecting(plan):
            assert faults.corrupt_bytes("s", b"abcdef") == b"abc"
            assert faults.corrupt_bytes("s", b"abcdef") == b"abcdef"
