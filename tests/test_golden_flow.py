"""Golden-file regression of a small fixed flow.

Pins the default-path output (``REPRO_KERNEL=vector``, no faults)
bit-for-bit against checked-in references: a SPICE-characterized
NAND2 Liberty at 77 K and the ``ctrl``/baseline ``FlowResult`` JSON
at 10 K.  Any intentional change that moves these must regenerate
them (the command is documented in ``tests/golden/regen.py`` and
``docs/PERFORMANCE.md``):

    PYTHONPATH=src python tests/golden/regen.py

The module is ``no_chaos``: injected faults legitimately perturb
measurements (degraded arcs, retried transients), which is exactly
what a bit-identity golden must not see.
"""

import hashlib
import pathlib

import pytest

from .golden import regen

pytestmark = pytest.mark.no_chaos

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"


def _stored(name: str) -> str:
    return (GOLDEN_DIR / name).read_text()


class TestGoldenCharlib:
    @pytest.fixture(scope="class")
    def liberty_text(self):
        return regen.build_liberty_text()

    def test_liberty_text_matches_golden(self, liberty_text):
        assert liberty_text == _stored("nand2_spice_77k.lib")

    def test_no_degraded_arcs_on_healthy_run(self, liberty_text):
        # A degraded arc would mean the golden captured fallback-quality
        # tables; the regeneration refuses that by construction.
        assert "degraded arcs" not in liberty_text


class TestGoldenFlow:
    @pytest.fixture(scope="class")
    def flow_json(self):
        return regen.build_flow_json()

    def test_flow_result_matches_golden(self, flow_json):
        assert flow_json == _stored("flow_ctrl_baseline.json")

    def test_digest_documented_format(self, flow_json):
        # The digest form is what CI logs on mismatch: reproducing it
        # here keeps the two representations in lockstep.
        stored = hashlib.sha256(_stored("flow_ctrl_baseline.json").encode()).hexdigest()
        assert hashlib.sha256(flow_json.encode()).hexdigest() == stored
