"""Differential suite: graph STA ≡ legacy STA.

The levelized array engine (``repro/sta/graph.py``) is designed to
replay the legacy per-gate propagation arithmetic operation for
operation, so the contract checked here is *bit-identity* (stronger
than the ≤ 1e-12 requirement): identical arrivals, slews, loads,
critical path, and PO arrivals on

* every circuit of the benchgen suite,
* degraded libraries (analytic-fallback NLDM tables),
* randomized incremental-edit sequences, where ``retime`` after each
  cell swap must equal both a from-scratch graph analysis and the
  legacy engine on the swapped netlist.
"""

import random
from dataclasses import replace

import numpy as np
import pytest

from repro import obs
from repro.benchgen.suite import EPFL_SUITE, build_circuit
from repro.charlib import default_library
from repro.mapping import map_to_gates
from repro.mapping.netlist import GateInstance, MappedNetlist
from repro.mapping.sizing import _build_families, _family_key, size_gates
from repro.mapping.cost import CostPolicy
from repro.sta.graph import TimingGraph
from repro.sta.interp import PackedTables, bilinear_many
from repro.sta.timing import (
    SignoffConfig,
    StaticTimingAnalyzer,
    TimingReport,
    default_engine,
)


@pytest.fixture(scope="module")
def library():
    return default_library(10.0)


@pytest.fixture(scope="module")
def library300():
    return default_library(300.0)


def assert_reports_identical(a: TimingReport, b: TimingReport) -> None:
    """Bit-for-bit equality, including dict iteration order for the
    float-summation-sensitive ``net_load``."""
    assert a.arrival == b.arrival
    assert a.slew == b.slew
    assert a.net_load == b.net_load
    assert list(a.net_load) == list(b.net_load)
    assert a.critical_path == b.critical_path
    assert a.max_delay == b.max_delay
    assert a.po_arrival == b.po_arrival


def both_engines(netlist, library, config=None):
    legacy = StaticTimingAnalyzer(
        netlist, library, config, engine="legacy"
    ).analyze()
    graph = StaticTimingAnalyzer(
        netlist, library, config, engine="graph"
    ).analyze()
    return legacy, graph


class TestEngineSelection:
    def test_default_is_graph(self, monkeypatch):
        monkeypatch.delenv("REPRO_STA", raising=False)
        assert default_engine() == "graph"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_STA", "legacy")
        assert default_engine() == "legacy"

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_STA", "quantum")
        with pytest.raises(ValueError, match="REPRO_STA"):
            default_engine()

    def test_invalid_engine_argument_rejected(self, library):
        netlist = map_to_gates(build_circuit("ctrl", "small"), library)
        with pytest.raises(ValueError, match="engine"):
            StaticTimingAnalyzer(netlist, library, engine="quantum")


class TestInterpKernel:
    def test_bilinear_matches_scalar_lookup(self, library):
        tables = PackedTables()
        rows = []
        for cell in library.cells.values():
            for arc in cell.arcs:
                for table in (arc.cell_rise, arc.rise_transition):
                    rows.append((tables.add(table), table))
        tables.finalize()
        rng = random.Random(0)
        tids, slews, loads, expected = [], [], [], []
        for tid, table in rows:
            for _ in range(4):
                # Mix of in-grid and out-of-grid (clamped) queries.
                s = rng.uniform(0.2 * table.slews[0], 3.0 * table.slews[-1])
                l = rng.uniform(0.2 * table.loads[0], 3.0 * table.loads[-1])
                tids.append(tid)
                slews.append(s)
                loads.append(l)
                expected.append(table.lookup(s, l))
        got = tables.lookup(
            np.array(tids), np.array(slews), np.array(loads)
        )
        assert got.tolist() == expected

    def test_exact_grid_points(self, library):
        cell = next(c for c in library.cells.values() if c.arcs)
        table = cell.arcs[0].cell_rise
        tables = PackedTables()
        tid = tables.add(table)
        tables.finalize()
        for i, s in enumerate(table.slews):
            for j, l in enumerate(table.loads):
                got = tables.lookup(
                    np.array([tid]), np.array([s]), np.array([l])
                )[0]
                assert got == table.lookup(s, l)

    def test_add_after_finalize_rejected(self, library):
        cell = next(c for c in library.cells.values() if c.arcs)
        tables = PackedTables()
        tables.add(cell.arcs[0].cell_rise)
        tables.finalize()
        with pytest.raises(RuntimeError):
            tables.add(cell.arcs[0].cell_fall)

    def test_identity_interning(self, library):
        cell = next(c for c in library.cells.values() if c.arcs)
        tables = PackedTables()
        a = tables.add(cell.arcs[0].cell_rise)
        b = tables.add(cell.arcs[0].cell_rise)
        assert a == b
        assert len(tables) == 1


class TestFullSuiteDifferential:
    @pytest.mark.parametrize("name", sorted(EPFL_SUITE))
    def test_graph_equals_legacy(self, name, library):
        netlist = map_to_gates(build_circuit(name, "small"), library)
        legacy, graph = both_engines(netlist, library)
        assert_reports_identical(legacy, graph)

    def test_room_temperature_library(self, library300):
        netlist = map_to_gates(build_circuit("ctrl", "small"), library300)
        legacy, graph = both_engines(netlist, library300)
        assert_reports_identical(legacy, graph)

    def test_custom_signoff_config(self, library):
        netlist = map_to_gates(build_circuit("int2float", "small"), library)
        config = SignoffConfig(
            input_slew=3.3e-11,
            output_load=5e-15,
            wire_cap_base=2e-16,
            wire_cap_per_fanout=5e-17,
        )
        legacy, graph = both_engines(netlist, library, config)
        assert_reports_identical(legacy, graph)

    def test_feedthrough_netlist(self, library):
        # PO wired straight to a PI: no gates, no levels.
        netlist = MappedNetlist("wire", ["a"], ["a"], [])
        legacy, graph = both_engines(netlist, library)
        assert_reports_identical(legacy, graph)

    def test_net_loads_match(self, library):
        netlist = map_to_gates(build_circuit("priority", "small"), library)
        legacy = StaticTimingAnalyzer(netlist, library, engine="legacy")
        graph = StaticTimingAnalyzer(netlist, library, engine="graph")
        assert legacy.net_loads() == graph.net_loads()
        assert list(legacy.net_loads()) == list(graph.net_loads())


class TestDegradedLibrary:
    def test_degraded_tables_still_identical(self):
        # A genuinely degraded library (failed SPICE arc replaced by
        # the sanitized analytic fallback) must differ only in table
        # *contents* — the engines must still agree bit-for-bit.
        from repro.charlib import characterize_library
        from repro.pdk import cryo5_technology
        from repro.pdk.catalog import standard_cell_catalog
        from repro.resilience import FaultPlan, FaultSpec, injecting

        plan = FaultPlan([FaultSpec("charlib.measure", first_n=2)])
        with injecting(plan):
            lib = characterize_library(
                cryo5_technology(), 10.0,
                cells=standard_cell_catalog()[:24], cache=False,
            )
        assert lib.is_degraded
        netlist = map_to_gates(build_circuit("ctrl", "small"), lib)
        legacy, graph = both_engines(netlist, lib)
        assert_reports_identical(legacy, graph)


def _swap_sequence(netlist, library, seed, steps):
    """Deterministic in-family random cell swaps: yields
    (gate index, new cell name)."""
    rng = random.Random(seed)
    families = _build_families(library)
    gates = list(netlist.gates)
    for _ in range(steps):
        gi = rng.randrange(len(gates))
        family = families.get(_family_key(library[gates[gi].cell]), [])
        if len(family) < 2:
            continue
        new_cell = rng.choice(family).name
        if new_cell == gates[gi].cell:
            continue  # no-op swap: retime would (correctly) skip it
        gates[gi] = replace(gates[gi], cell=new_cell)
        yield gi, new_cell, list(gates)


class TestIncrementalRetime:
    @pytest.mark.parametrize("name,seed", [("int2float", 1), ("div", 2), ("sin", 3)])
    def test_retime_equals_from_scratch_and_legacy(self, name, seed, library):
        netlist = map_to_gates(build_circuit(name, "small"), library)
        graph = TimingGraph(netlist, library)
        graph.analyze()
        for gi, new_cell, gates in _swap_sequence(netlist, library, seed, 30):
            graph.set_cell(gi, new_cell)
            incremental = graph.retime()
            swapped = MappedNetlist(
                netlist.name,
                list(netlist.pi_nets),
                list(netlist.po_nets),
                [GateInstance(g.name, g.cell, dict(g.pins), g.output_net,
                              g.output_pin) for g in gates],
            )
            scratch = TimingGraph(swapped, library).analyze()
            legacy = StaticTimingAnalyzer(
                swapped, library, engine="legacy"
            ).analyze()
            assert_reports_identical(incremental, scratch)
            assert_reports_identical(incremental, legacy)

    def test_noop_swap_is_free(self, library):
        netlist = map_to_gates(build_circuit("ctrl", "small"), library)
        graph = TimingGraph(netlist, library)
        before = graph.analyze()
        graph.set_cell(0, netlist.gates[0].cell)  # same cell
        assert graph.retime() is before  # cached report, no recompute

    def test_revert_restores_exact_state(self, library):
        netlist = map_to_gates(build_circuit("int2float", "small"), library)
        graph = TimingGraph(netlist, library)
        baseline = graph.analyze()
        families = _build_families(library)
        original = netlist.gates[0].cell
        family = families.get(_family_key(library[original]), [])
        other = next((c.name for c in family if c.name != original), None)
        if other is None:
            pytest.skip("no family sibling for gate 0")
        graph.set_cell(0, other)
        graph.retime()
        graph.set_cell(0, original)
        reverted = graph.retime()
        assert_reports_identical(baseline, reverted)

    def test_sync_absorbs_external_swaps(self, library):
        netlist = map_to_gates(build_circuit("div", "small"), library)
        analyzer = StaticTimingAnalyzer(netlist, library, engine="graph")
        first = analyzer.analyze()
        # Swap cells in place (what sizing does) and re-analyze.
        for gi, new_cell, gates in _swap_sequence(netlist, library, 9, 10):
            netlist.gates[gi] = GateInstance(
                netlist.gates[gi].name, new_cell,
                dict(netlist.gates[gi].pins),
                netlist.gates[gi].output_net, netlist.gates[gi].output_pin,
            )
        second = analyzer.analyze()
        legacy = StaticTimingAnalyzer(
            netlist, library, engine="legacy"
        ).analyze()
        assert_reports_identical(second, legacy)

    def test_sync_detects_structural_change(self, library):
        netlist = map_to_gates(build_circuit("ctrl", "small"), library)
        graph = TimingGraph(netlist, library)
        graph.analyze()
        shorter = MappedNetlist(
            netlist.name, list(netlist.pi_nets), list(netlist.po_nets),
            list(netlist.gates[:-1]),
        )
        assert graph.sync(shorter) is False

    def test_incremental_counters(self, library):
        netlist = map_to_gates(build_circuit("int2float", "small"), library)
        swaps = list(_swap_sequence(netlist, library, 5, 10))
        with obs.Tracer() as tracer:
            graph = TimingGraph(netlist, library)
            graph.analyze()
            for gi, new_cell, _ in swaps:
                graph.set_cell(gi, new_cell)
                graph.retime()
        counters = tracer.counters
        assert counters.get("sta.graph_builds") == 1
        assert counters.get("sta.full_retimes") == 1
        assert counters.get("sta.incremental_hits", 0) == len(swaps)
        hist = tracer.metrics_snapshot().get("histograms", {})
        assert "sta.retime_cone_size" in hist


class TestSizingIntegration:
    def test_sizing_issues_incremental_retimes(self, library):
        netlist = map_to_gates(build_circuit("int2float", "small"), library)
        policy = CostPolicy("d_p_a", ("delay", "power", "area"), epsilon=0.05)
        with obs.Tracer() as tracer:
            sized, report = size_gates(netlist, library, policy)
        assert report.total_changes > 0
        assert tracer.counters.get("sta.incremental_hits", 0) >= 1
        # Legacy sizing reaches the same decisions (timing is
        # bit-identical, so candidate costs are too).
        import os

        sized_legacy, report_legacy = None, None
        os.environ["REPRO_STA"] = "legacy"
        try:
            sized_legacy, report_legacy = size_gates(netlist, library, policy)
        finally:
            os.environ.pop("REPRO_STA", None)
        assert [g.cell for g in sized.gates] == [g.cell for g in sized_legacy.gates]
        assert report.total_changes == report_legacy.total_changes


class TestReportSurface:
    def test_timing_report_to_dict(self, library):
        netlist = map_to_gates(build_circuit("ctrl", "small"), library)
        timing = StaticTimingAnalyzer(netlist, library).analyze()
        out = timing.to_dict()
        assert out["max_delay_s"] == timing.max_delay
        assert out["critical_path"] == timing.critical_path
        assert set(out["po_arrival_s"]) == set(netlist.po_nets)
        assert out["po_arrival_s"][max(
            netlist.po_nets, key=lambda n: timing.arrival.get(n, 0.0)
        )] == timing.max_delay

    def test_flow_result_carries_timing(self, library):
        from repro.core.flow import CryoSynthesisFlow

        flow = CryoSynthesisFlow(library, "baseline")
        result = flow.run(build_circuit("ctrl", "small"))
        assert result.timing is not None
        assert result.timing.max_delay == result.critical_delay
        out = result.to_dict()
        assert out["timing"]["max_delay_s"] == result.critical_delay
        assert out["timing"]["critical_path"] == result.timing.critical_path
