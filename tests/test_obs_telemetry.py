"""Cross-process telemetry: span forwarding, grafting, resource monitor.

The ``--isolate process`` contract (``docs/OBSERVABILITY.md``): spans,
counters, and histogram observations recorded *inside* a worker
subprocess ride home over the result pipe and are re-parented under a
supervisor-side ``isolation.task`` span, so the profile of an isolated
run reads the same as an in-process one.  Task functions live at
module level where pickle can find them (spawn start method).
"""

import os

import pytest

from repro import obs
from repro.obs import telemetry
from repro.obs.tracer import SpanRecord
from repro.resilience import FaultPlan, FaultSpec, injecting
from repro.resilience.isolation import process_map


def _traced_square(x):
    with obs.span("tele.work", item=x):
        obs.count("tele.done")
        obs.observe("tele.lat", float(x))
    return x * x


def _tiny_transient(_):
    from repro.device import CryoFinFET, default_nfet_5nm, default_pfet_5nm
    from repro.pdk import cryo5_technology
    from repro.spice import Circuit, DC, Simulator, ramp

    tech = cryo5_technology()
    circuit = Circuit("inv")
    circuit.add_vsource("vdd", "vdd", "0", DC(tech.vdd))
    circuit.add_vsource("vin", "a", "0", ramp(2e-11, 1e-11, 0.0, tech.vdd))
    circuit.add_finfet("mp", "y", "a", "vdd", CryoFinFET(default_pfet_5nm(nfin=3)))
    circuit.add_finfet("mn", "y", "a", "0", CryoFinFET(default_nfet_5nm(nfin=2)))
    circuit.add_capacitor("cl", "y", "0", 2e-15)
    result = Simulator(circuit, 10.0).transient(5e-11, 1e-12)
    return len(result.time)


class TestSnapshotGraft:
    """Unit-level wire-format tests: no subprocesses involved."""

    def test_roundtrip_reparents_and_merges(self):
        child = obs.Tracer()
        child.install()
        try:
            with obs.span("child.outer"):
                with obs.span("child.inner"):
                    obs.count("child.work", 2)
            obs.observe("child.lat", 1.5)
            obs.gauge("child.level", 7.0)
        finally:
            child.uninstall()
        snap = telemetry.snapshot(child)
        assert snap["version"] == telemetry.TELEMETRY_VERSION

        parent_tracer = obs.Tracer()
        with parent_tracer:
            with obs.span("host") as sp:
                host = sp.record
        grafted = telemetry.graft(
            parent_tracer, snap, parent=host, start_shift=10.0
        )
        assert grafted == 2
        by_name = {s.name: s for s in parent_tracer.spans}
        outer, inner = by_name["child.outer"], by_name["child.inner"]
        assert outer.parent_id == host.span_id
        assert inner.parent_id == outer.span_id
        assert inner.span_id != outer.span_id
        assert outer.start >= 10.0  # re-based into the receiver's epoch
        assert parent_tracer.counters["child.work"] == 2
        assert parent_tracer.histograms["child.lat"] == [1.5]
        assert parent_tracer.gauges["child.level"] == 7.0

    def test_graft_ignores_newer_version_and_empty(self):
        tracer = obs.Tracer()
        assert telemetry.graft(tracer, None) == 0
        assert telemetry.graft(tracer, {}) == 0
        newer = {"version": telemetry.TELEMETRY_VERSION + 1,
                 "spans": [{"id": 1, "name": "x", "start": 0.0}]}
        assert telemetry.graft(tracer, newer) == 0
        assert tracer.spans == []

    def test_graft_never_emits_self_cycle(self):
        # A forked worker can snapshot a span whose recorded parent is a
        # stale cross-process id that collides with the span's own id
        # after remapping; the graft must fall back to the task parent.
        tracer = obs.Tracer()
        task = SpanRecord(span_id=tracer._alloc_span_id(), parent_id=None,
                          name="isolation.task", start=0.0, duration=0.1)
        tracer.spans.append(task)
        snap = {
            "version": telemetry.TELEMETRY_VERSION,
            "spans": [{"id": 1, "parent": 1, "name": "w", "start": 0.0,
                       "duration": 0.01, "status": "ok"}],
        }
        assert telemetry.graft(tracer, snap, parent=task) == 1
        grafted = tracer.spans[-1]
        assert grafted.parent_id == task.span_id
        assert grafted.parent_id != grafted.span_id

    def test_wire_values_sanitized(self):
        child = obs.Tracer()
        child.install()
        try:
            with obs.span("s", obj=object(), n=3, text="x", flag=True):
                pass
        finally:
            child.uninstall()
        [wire] = telemetry.snapshot(child)["spans"]
        assert isinstance(wire["attrs"]["obj"], str)  # stringified, not pickled
        assert wire["attrs"]["n"] == 3
        assert wire["attrs"]["flag"] is True

    def test_record_task_synthesizes_span(self):
        tracer = obs.Tracer()
        record = telemetry.record_task(
            tracer, None, "task[0]", 1.0, 1.5, status="error", worker=2
        )
        assert record.name == "isolation.task"
        assert record.attrs["label"] == "task[0]"
        assert record.attrs["worker"] == 2
        assert record.status == "error"
        assert record.duration == pytest.approx(0.5)
        assert tracer.spans[-1] is record


@pytest.mark.no_chaos
class TestProcessMapForwarding:
    def test_worker_spans_and_metrics_come_home(self):
        with obs.Tracer() as tracer:
            results = process_map(_traced_square, [1, 2, 3], jobs=2)
        assert results == [1, 4, 9]
        by_name: dict[str, list] = {}
        for record in tracer.spans:
            by_name.setdefault(record.name, []).append(record)
        tasks = by_name["isolation.task"]
        assert {t.attrs["label"] for t in tasks} == {
            "task[0]", "task[1]", "task[2]"
        }
        [pmap] = by_name["isolation.process_map"]
        assert all(t.parent_id == pmap.span_id for t in tasks)
        task_ids = {t.span_id for t in tasks}
        works = by_name["tele.work"]
        assert len(works) == 3
        assert all(w.parent_id in task_ids for w in works)
        metrics = tracer.metrics_snapshot()
        assert metrics["counters"]["tele.done"] == 3
        assert metrics["histograms"]["tele.lat"]["count"] == 3
        assert metrics["gauges"].get("isolation.worker.peak_rss_mb", 0) >= 0

    def test_no_tracer_means_no_worker_tracing(self):
        # Without a supervisor tracer the dispatch carries trace=False;
        # nothing to assert beyond "it still works" — the cost gate is
        # benchmarks/test_obs_overhead.py.
        assert process_map(_traced_square, [2], jobs=1) == [4]

    def test_killed_worker_task_span_survives_crash_and_retry(self):
        # Satellite contract: a watchdog-killed task loses the spans
        # that died with the worker, but the supervisor still records
        # an error-status isolation.task span for the attempt, and the
        # retry's spans arrive labelled like any other task.
        plan = FaultPlan([FaultSpec("parallel.hang", first_n=1)], seed=0)
        with obs.Tracer() as tracer:
            with injecting(plan):
                results = process_map(
                    _traced_square, [5, 6], jobs=1, task_timeout_s=0.8
                )
        assert results == [25, 36]
        tasks = [s for s in tracer.spans if s.name == "isolation.task"]
        errors = [t for t in tasks if t.status == "error"]
        assert len(errors) == 1
        assert errors[0].attrs["error"] == "WorkerHungError"
        assert errors[0].attrs["attempt"] == 1
        retried = [
            t for t in tasks
            if t.attrs["label"] == errors[0].attrs["label"] and t.status == "ok"
        ]
        assert len(retried) == 1
        assert retried[0].attrs["attempt"] == 2
        # Both items' worker spans made it home despite the kill.
        works = [s for s in tracer.spans if s.name == "tele.work"]
        assert {w.attrs["item"] for w in works} == {5, 6}
        counters = tracer.metrics_snapshot()["counters"]
        assert counters["isolation.watchdog_kill"] == 1
        assert counters["tele.done"] == 2

    def test_spice_counters_forwarded_from_worker(self):
        # A real kernel workload in the worker: the Newton-solve
        # counters recorded deep inside the SPICE engine must show up
        # in the supervisor's aggregate, and the engine's span tree
        # must hang under the task span.
        with obs.Tracer() as tracer:
            [steps] = process_map(_tiny_transient, [0], jobs=1)
        assert steps > 10
        counters = tracer.metrics_snapshot()["counters"]
        assert counters.get("spice.newton.solves", 0) > 0
        spice_spans = [s for s in tracer.spans if s.name == "spice.transient"]
        assert len(spice_spans) == 1
        [task] = [s for s in tracer.spans if s.name == "isolation.task"]
        assert spice_spans[0].parent_id == task.span_id


class TestFlowTreeParity:
    def test_isolated_run_contains_in_process_span_tree(self):
        # Acceptance: the span-name tree of an --isolate process run
        # must cover the in-process (thread) run's flow/synthesis tree
        # — before telemetry forwarding the worker spans simply
        # vanished at the pipe.
        from repro.benchgen import build_circuit
        from repro.core import DesignContext, run_scenarios

        aig = build_circuit("ctrl", "small")
        prefixes = ("flow.", "synth.", "stage1.", "stage2.")

        def span_names(isolate):
            context = DesignContext.default(10.0)
            with obs.Tracer() as tracer:
                results = run_scenarios(
                    aig,
                    context=context,
                    scenarios=["baseline", "p_a_d"],
                    vectors=32,
                    jobs=2,
                    isolate=isolate,
                )
            assert set(results) == {"baseline", "p_a_d"}
            return {
                record.name
                for record in tracer.spans
                if record.name.startswith(prefixes)
            }

        threaded = span_names("thread")
        isolated = span_names("process")
        assert threaded  # the in-process run records a real tree
        missing = threaded - isolated
        assert not missing, f"worker spans lost at the pipe: {sorted(missing)}"


class TestResourceMonitor:
    def test_monitor_records_gauges(self):
        tracer = obs.Tracer()
        with obs.ResourceMonitor(tracer, interval_s=0.03) as monitor:
            ballast = bytearray(4 * 1024 * 1024)
            import time as _time

            _time.sleep(0.12)
            assert len(ballast) > 0
        gauges = tracer.gauges
        assert gauges.get("resource.cpu_s", -1.0) >= 0.0
        if os.path.exists("/proc/self/statm"):
            assert gauges["resource.rss_mb"] > 0
            assert gauges["resource.peak_rss_mb"] >= gauges["resource.rss_mb"]
            assert monitor.peak_rss_mb == gauges["resource.peak_rss_mb"]
            assert tracer.histograms["resource.rss_mb"]

    def test_stop_is_idempotent(self):
        monitor = obs.ResourceMonitor(obs.Tracer(), interval_s=0.05).start()
        monitor.stop()
        monitor.stop()  # second stop must be a no-op
        assert monitor._thread is None
