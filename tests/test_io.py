"""Tests for AIGER / BLIF / Verilog interchange."""

import random

import pytest

from repro.charlib import default_library
from repro.io import (
    parse_ascii,
    parse_binary,
    parse_blif,
    write_ascii,
    write_binary,
    write_blif,
    write_verilog,
)
from repro.mapping import map_to_gates
from repro.sat import assert_equivalent
from repro.synth import AIG, lit_not, map_luts


def random_network(seed: int, n_pis=5, n_ops=50) -> AIG:
    rng = random.Random(seed)
    g = AIG(f"net{seed}")
    lits = [g.add_pi(f"in{i}") for i in range(n_pis)]
    for _ in range(n_ops):
        a, b = rng.choice(lits), rng.choice(lits)
        lits.append(
            getattr(g, rng.choice(["add_and", "add_or", "add_xor"]))(
                a ^ rng.randint(0, 1), b ^ rng.randint(0, 1)
            )
        )
    g.add_po(lits[-1], "out0")
    g.add_po(lit_not(lits[-2]), "out1")
    return g.cleanup()


class TestAigerAscii:
    @pytest.mark.parametrize("seed", range(4))
    def test_round_trip_equivalence(self, seed):
        g = random_network(seed)
        back = parse_ascii(write_ascii(g))
        assert_equivalent(g, back, f"aag seed {seed}")

    def test_names_preserved(self):
        g = random_network(0)
        back = parse_ascii(write_ascii(g))
        assert back.pi_names == g.pi_names
        assert back.po_names == g.po_names

    def test_header_counts(self):
        g = random_network(1)
        header = write_ascii(g).splitlines()[0].split()
        assert header[0] == "aag"
        assert int(header[2]) == g.num_pis
        assert int(header[4]) == g.num_pos
        assert int(header[5]) == g.num_ands

    def test_constant_po(self):
        g = AIG()
        g.add_pi("a")
        g.add_po(1, "const1")
        back = parse_ascii(write_ascii(g))
        assert back.evaluate([False]) == [True]

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_ascii("module foo; endmodule")

    def test_rejects_latches(self):
        with pytest.raises(ValueError):
            parse_ascii("aag 1 0 1 0 0\n2 2\n")


class TestAigerBinary:
    @pytest.mark.parametrize("seed", range(4))
    def test_round_trip_equivalence(self, seed):
        g = random_network(seed)
        back = parse_binary(write_binary(g))
        assert_equivalent(g, back, f"aig seed {seed}")

    def test_names_preserved(self):
        g = random_network(2)
        back = parse_binary(write_binary(g))
        assert back.pi_names == g.pi_names

    def test_binary_smaller_than_ascii(self):
        g = random_network(3, n_ops=200)
        assert len(write_binary(g)) < len(write_ascii(g).encode())

    def test_cross_format_equivalence(self):
        g = random_network(1)
        via_ascii = parse_ascii(write_ascii(g))
        via_binary = parse_binary(write_binary(g))
        assert_equivalent(via_ascii, via_binary, "cross-format")


class TestBlif:
    @pytest.mark.parametrize("seed", range(3))
    def test_round_trip_equivalence(self, seed):
        g = random_network(seed)
        net = map_luts(g, k=4)
        back = parse_blif(write_blif(net))
        assert_equivalent(net.to_aig(), back.to_aig(), f"blif seed {seed}")

    def test_model_name(self):
        g = random_network(0)
        net = map_luts(g, k=4)
        text = write_blif(net, model="mymodel")
        assert text.startswith(".model mymodel")
        assert parse_blif(text).name == "mymodel"

    def test_unsupported_construct_rejected(self):
        with pytest.raises(ValueError):
            parse_blif(".model x\n.inputs a\n.outputs y\n.latch a y\n.end\n")

    def test_undefined_output_rejected(self):
        with pytest.raises(ValueError):
            parse_blif(".model x\n.inputs a\n.outputs y\n.end\n")


class TestVerilog:
    def test_structure(self):
        g = random_network(0)
        lib = default_library(10.0)
        net = map_to_gates(g, lib)
        text = write_verilog(net)
        assert text.startswith("module net0")
        assert text.rstrip().endswith("endmodule")
        for gate in net.gates:
            assert gate.cell in text

    def test_bus_names_sanitized(self):
        g = AIG("top")
        a = g.add_pi("data[0]")
        b = g.add_pi("data[1]")
        g.add_po(g.add_and(a, b), "out[0]")
        lib = default_library(10.0)
        net = map_to_gates(g, lib)
        text = write_verilog(net)
        assert "data[0]" not in text
        assert "data_0_" in text

    def test_instance_count_matches(self):
        g = random_network(1)
        lib = default_library(10.0)
        net = map_to_gates(g, lib)
        text = write_verilog(net)
        instance_lines = [l for l in text.splitlines() if l.strip().startswith(("INV", "NAND", "NOR", "AND", "OR", "XOR", "XNOR", "AOI", "OAI", "AO", "OA", "MUX", "MAJ", "HA", "FA", "BUF", "CLK", "NAND2B", "NOR2B", "DLY", "TIE"))]
        assert len(instance_lines) == net.num_gates


class TestVerilogReader:
    def test_round_trip_equivalence(self):
        from repro.io import parse_verilog, write_verilog

        g = random_network(4)
        lib = default_library(10.0)
        net = map_to_gates(g, lib)
        back = parse_verilog(write_verilog(net))
        assert back.num_gates == net.num_gates
        assert back.pi_nets and back.po_nets
        assert_equivalent(net.to_aig(lib), back.to_aig(lib), "verilog rt")

    def test_comments_stripped(self):
        from repro.io import parse_verilog

        text = (
            "// header comment\n"
            "module m (\n  input a,\n  output y\n);\n"
            "/* block */  INVx1 g1 (.A(a), .Y(y));\n"
            "endmodule\n"
        )
        net = parse_verilog(text)
        assert net.pi_nets == ["a"]
        assert net.po_nets == ["y"]
        assert net.gates[0].cell == "INVx1"
        assert net.gates[0].pins == {"A": "a"}
        assert net.gates[0].output_net == "y"

    def test_wire_declarations_accepted(self):
        from repro.io import parse_verilog

        text = (
            "module m (\n  input a,\n  output y\n);\n"
            "  wire t1, t2;\n"
            "  INVx1 g1 (.A(a), .Y(t1));\n"
            "  INVx1 g2 (.A(t1), .Y(y));\n"
            "endmodule\n"
        )
        net = parse_verilog(text)
        assert net.num_gates == 2

    def test_missing_endmodule_rejected(self):
        from repro.io import parse_verilog
        import pytest as _pytest

        with _pytest.raises(ValueError):
            parse_verilog("module m (input a, output y); INVx1 g (.A(a), .Y(y));")

    def test_garbage_rejected(self):
        from repro.io import parse_verilog
        import pytest as _pytest

        with _pytest.raises(ValueError):
            parse_verilog("library (foo) { }")
