"""Tests for truth-table utilities, ISOP, factoring, and NPN."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.synth import AIG, build_function, cover_to_tt, isop, npn_apply, npn_canon
from repro.synth.truth import (
    tt_cofactor,
    tt_depends_on,
    tt_expand,
    tt_flip_input,
    tt_mask,
    tt_not,
    tt_permute,
    tt_support,
    tt_var,
)

AND2 = 0b1000
XOR2 = 0b0110


class TestTruthBasics:
    def test_masks(self):
        assert tt_mask(1) == 0b11
        assert tt_mask(2) == 0xF
        assert tt_mask(3) == 0xFF

    def test_variables(self):
        assert tt_var(0, 2) == 0b1010
        assert tt_var(1, 2) == 0b1100

    def test_var_out_of_range(self):
        with pytest.raises(ValueError):
            tt_var(2, 2)

    def test_not(self):
        assert tt_not(AND2, 2) == 0b0111

    def test_cofactors(self):
        # AND: cofactor wrt var0=1 gives var1; wrt var0=0 gives 0.
        assert tt_cofactor(AND2, 0, True, 2) == tt_var(1, 2)
        assert tt_cofactor(AND2, 0, False, 2) == 0

    def test_support(self):
        assert tt_support(AND2, 2) == [0, 1]
        assert tt_support(tt_var(0, 3), 3) == [0]
        assert tt_support(0, 3) == []

    def test_depends_on(self):
        assert tt_depends_on(XOR2, 0, 2)
        assert not tt_depends_on(tt_var(1, 2), 0, 2)

    def test_permute_swap(self):
        f = tt_var(0, 2)  # f = x0
        swapped = tt_permute(f, (1, 0), 2)
        assert swapped == tt_var(1, 2)

    def test_flip_input(self):
        f = tt_var(0, 2)
        assert tt_flip_input(f, 0, 2) == tt_not(tt_var(0, 2), 2)

    def test_expand(self):
        # x0 over 1 var -> placed at position 2 of 3 vars.
        f = tt_var(0, 1)
        expanded = tt_expand(f, [2], 1, 3)
        assert expanded == tt_var(2, 3)


class TestNPN:
    def test_idempotent(self):
        canon, *_ = npn_canon(AND2, 2)
        canon2, *_ = npn_canon(canon, 2)
        assert canon == canon2

    def test_class_members_share_canon(self):
        # AND, OR, NAND, NOR are all one NPN class.
        targets = {npn_canon(f, 2)[0] for f in (0b1000, 0b1110, 0b0111, 0b0001)}
        assert len(targets) == 1

    def test_xor_class_separate_from_and(self):
        assert npn_canon(XOR2, 2)[0] != npn_canon(AND2, 2)[0]

    def test_transform_applies(self):
        rng = random.Random(0)
        for _ in range(100):
            n = rng.randint(1, 4)
            f = rng.getrandbits(1 << n) & tt_mask(n)
            canon, perm, neg, out = npn_canon(f, n)
            assert npn_apply(f, perm, neg, out, n) == canon

    def test_limit_enforced(self):
        with pytest.raises(ValueError):
            npn_canon(0, 5)

    @settings(max_examples=60, deadline=None)
    @given(f=st.integers(min_value=0, max_value=0xFFFF))
    def test_canonical_is_minimum(self, f):
        canon, *_ = npn_canon(f, 4)
        assert canon <= f & tt_mask(4)


class TestISOP:
    def test_constant_functions(self):
        assert isop(0, 0, 2) == []
        cover = isop(tt_mask(2), 0, 2)
        assert cover_to_tt(cover, 2) == tt_mask(2)

    def test_and_function(self):
        cover = isop(AND2, 0, 2)
        assert cover_to_tt(cover, 2) == AND2
        assert len(cover) == 1

    def test_xor_needs_two_cubes(self):
        cover = isop(XOR2, 0, 2)
        assert cover_to_tt(cover, 2) == XOR2
        assert len(cover) == 2

    def test_dont_cares_shrink_cover(self):
        # f = minterm 3 only, dc = everything else on -> single cube
        # covering broadly is allowed.
        cover = isop(0b1000, 0b0111, 2)
        tt = cover_to_tt(cover, 2)
        assert tt & 0b1000
        assert len(cover) <= 1

    @settings(max_examples=150, deadline=None)
    @given(
        f=st.integers(min_value=0, max_value=0xFFFF),
        dc=st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_cover_valid_property(self, f, dc):
        on = f & ~dc & tt_mask(4)
        cover = isop(on, dc & tt_mask(4), 4)
        tt = cover_to_tt(cover, 4)
        assert (on & ~tt) == 0, "cover must include the on-set"
        assert (tt & ~(on | dc)) & tt_mask(4) == 0, "cover must stay in bounds"


class TestBuildFunction:
    @settings(max_examples=80, deadline=None)
    @given(f=st.integers(min_value=0, max_value=0xFFFF))
    def test_factored_form_correct(self, f):
        g = AIG()
        leaves = [g.add_pi() for _ in range(4)]
        lit = build_function(g, f, leaves)
        g.add_po(lit)
        for i in range(16):
            bits = [bool((i >> j) & 1) for j in range(4)]
            assert g.evaluate(bits)[0] == bool((f >> i) & 1)

    def test_constants(self):
        g = AIG()
        leaves = [g.add_pi()]
        assert build_function(g, 0, leaves) == 0
        assert build_function(g, 0b11, leaves) == 1

    def test_single_variable(self):
        g = AIG()
        leaves = [g.add_pi()]
        assert build_function(g, 0b10, leaves) == leaves[0]
