"""Tests for the AIG data structure."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.synth import AIG, CONST0, CONST1, lit_is_compl, lit_not, lit_var, make_lit


class TestLiterals:
    def test_encoding(self):
        assert make_lit(5) == 10
        assert make_lit(5, True) == 11
        assert lit_var(11) == 5
        assert lit_is_compl(11)
        assert not lit_is_compl(10)

    def test_not(self):
        assert lit_not(10) == 11
        assert lit_not(lit_not(10)) == 10

    def test_constants(self):
        assert CONST0 == 0
        assert CONST1 == 1
        assert lit_not(CONST0) == CONST1


class TestConstruction:
    def test_pi_literals(self):
        g = AIG()
        a = g.add_pi("x")
        assert a == 2  # node 1, positive
        assert g.num_pis == 1
        assert g.pi_names == ["x"]

    def test_and_simplifications(self):
        g = AIG()
        a = g.add_pi()
        assert g.add_and(a, CONST0) == CONST0
        assert g.add_and(a, CONST1) == a
        assert g.add_and(a, a) == a
        assert g.add_and(a, lit_not(a)) == CONST0

    def test_structural_hashing(self):
        g = AIG()
        a, b = g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        assert g.add_and(a, b) == x
        assert g.add_and(b, a) == x
        assert g.num_ands == 1

    def test_derived_gates(self):
        g = AIG()
        a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
        g.add_po(g.add_or(a, b), "or")
        g.add_po(g.add_xor(a, b), "xor")
        g.add_po(g.add_mux(c, a, b), "mux")
        g.add_po(g.add_maj(a, b, c), "maj")
        for i in range(8):
            va, vb, vc = bool(i & 1), bool(i & 2), bool(i & 4)
            outs = g.evaluate([va, vb, vc])
            assert outs[0] == (va or vb)
            assert outs[1] == (va != vb)
            assert outs[2] == (va if vc else vb)
            assert outs[3] == (va and vb or vc and (va or vb))

    def test_fanins_of_pi_rejected(self):
        g = AIG()
        a = g.add_pi()
        with pytest.raises(ValueError):
            g.fanins(lit_var(a))


class TestAnalysis:
    def test_levels_and_depth(self):
        g = AIG()
        a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        y = g.add_and(x, c)
        g.add_po(y)
        assert g.depth() == 2
        levels = g.levels()
        assert levels[lit_var(x)] == 1
        assert levels[lit_var(y)] == 2

    def test_fanout_counts(self):
        g = AIG()
        a, b = g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        g.add_po(x)
        g.add_po(g.add_and(x, a))
        counts = g.fanout_counts()
        assert counts[lit_var(x)] == 2  # PO + AND
        assert counts[lit_var(a)] == 2

    def test_empty_network_depth(self):
        assert AIG().depth() == 0


class TestSimulation:
    def test_bit_parallel_matches_single(self):
        rng = random.Random(1)
        g = AIG()
        lits = [g.add_pi() for _ in range(5)]
        for _ in range(40):
            a, b = rng.choice(lits), rng.choice(lits)
            lits.append(g.add_xor(a, b) if rng.random() < 0.3 else g.add_and(a, b))
        g.add_po(lits[-1])
        words = [rng.getrandbits(32) for _ in range(5)]
        parallel = g.simulate(words, width=32)[0]
        for bit in range(32):
            inputs = [bool((w >> bit) & 1) for w in words]
            assert g.evaluate(inputs)[0] == bool((parallel >> bit) & 1)

    def test_pi_count_checked(self):
        g = AIG()
        g.add_pi()
        g.add_po(2)
        with pytest.raises(ValueError):
            g.simulate([1, 2], width=8)

    def test_complemented_po(self):
        g = AIG()
        a = g.add_pi()
        g.add_po(lit_not(a))
        assert g.evaluate([True]) == [False]
        assert g.evaluate([False]) == [True]

    def test_constant_po(self):
        g = AIG()
        g.add_pi()
        g.add_po(CONST1)
        assert g.evaluate([False]) == [True]


class TestReconstruction:
    def test_cleanup_drops_dangling(self):
        g = AIG()
        a, b = g.add_pi(), g.add_pi()
        used = g.add_and(a, b)
        g.add_and(a, lit_not(b))  # dangling
        g.add_po(used)
        cleaned = g.cleanup()
        assert cleaned.num_ands == 1
        assert cleaned.num_pis == 2

    def test_cleanup_preserves_names(self):
        g = AIG()
        a = g.add_pi("first")
        g.add_po(lit_not(a), "out")
        cleaned = g.cleanup()
        assert cleaned.pi_names == ["first"]
        assert cleaned.po_names == ["out"]

    def test_substitution_with_constant(self):
        g = AIG()
        a, b = g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        g.add_po(g.add_and(x, a))
        replaced = g.copy_dag(substitutions={lit_var(x): CONST1})
        # Function becomes just `a`.
        assert replaced.evaluate([True, False]) == [True]
        assert replaced.evaluate([False, True]) == [False]

    def test_substitution_with_other_node(self):
        g = AIG()
        a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        y = g.add_and(a, c)
        g.add_po(g.add_and(x, c))
        replaced = g.copy_dag(substitutions={lit_var(x): y})
        # PO = (a & c) & c = a & c now.
        assert replaced.evaluate([True, False, True]) == [True]
        assert replaced.evaluate([True, True, False]) == [False]

    def test_complemented_substitution(self):
        g = AIG()
        a, b = g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        g.add_po(x)
        replaced = g.copy_dag(substitutions={lit_var(x): lit_not(a)})
        assert replaced.evaluate([True, True]) == [False]
        assert replaced.evaluate([False, True]) == [True]

    def test_deep_chain_no_recursion_error(self):
        g = AIG()
        lit = g.add_pi()
        other = g.add_pi()
        for _ in range(30000):
            lit = g.add_and(lit_not(lit), other)
        g.add_po(lit)
        cleaned = g.cleanup()
        assert cleaned.num_ands == 30000


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_cleanup_equivalence_property(seed):
    rng = random.Random(seed)
    g = AIG()
    lits = [g.add_pi() for _ in range(4)]
    for _ in range(30):
        a, b = rng.choice(lits), rng.choice(lits)
        lits.append(g.add_and(a ^ rng.randint(0, 1), b ^ rng.randint(0, 1)))
    g.add_po(lits[-1])
    cleaned = g.cleanup()
    for i in range(16):
        inputs = [bool((i >> j) & 1) for j in range(4)]
        assert g.evaluate(inputs) == cleaned.evaluate(inputs)
