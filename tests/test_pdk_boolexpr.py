"""Tests for Boolean-expression trees."""

import pytest
from hypothesis import given, strategies as st

from repro.pdk import Lit, and_all, or_all, truth_table


class TestEvaluation:
    def test_literal(self):
        assert Lit("A").evaluate({"A": True}) is True
        assert Lit("A").evaluate({"A": False}) is False

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            Lit("A").evaluate({})

    def test_operators(self):
        a, b = Lit("A"), Lit("B")
        env = {"A": True, "B": False}
        assert (a & b).evaluate(env) is False
        assert (a | b).evaluate(env) is True
        assert (~a).evaluate(env) is False

    def test_nested(self):
        a, b, c = Lit("A"), Lit("B"), Lit("C")
        expr = (a & b) | (~a & c)
        assert expr.evaluate({"A": False, "B": False, "C": True}) is True
        assert expr.evaluate({"A": True, "B": False, "C": True}) is False


class TestVariables:
    def test_order_is_first_reference(self):
        a, b, c = Lit("A"), Lit("B"), Lit("C")
        expr = (b & a) | c
        assert expr.variables() == ["B", "A", "C"]

    def test_duplicates_removed(self):
        a = Lit("A")
        assert (a & a).variables() == ["A"]


class TestBuilders:
    def test_and_all_or_all(self):
        lits = [Lit(x) for x in "ABC"]
        env = {"A": True, "B": True, "C": False}
        assert and_all(lits).evaluate(env) is False
        assert or_all(lits).evaluate(env) is True

    def test_single_element(self):
        assert and_all([Lit("A")]).evaluate({"A": True}) is True

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            and_all([])
        with pytest.raises(ValueError):
            or_all([])


class TestLibertyStrings:
    def test_formats(self):
        a, b = Lit("A"), Lit("B")
        assert (a & b).to_liberty() == "(A&B)"
        assert (a | b).to_liberty() == "(A|B)"
        assert (~a).to_liberty() == "(!A)"


class TestTruthTable:
    def test_and2(self):
        a, b = Lit("A"), Lit("B")
        assert truth_table(a & b, ["A", "B"]) == 0b1000

    def test_or2(self):
        a, b = Lit("A"), Lit("B")
        assert truth_table(a | b, ["A", "B"]) == 0b1110

    def test_xor_via_composition(self):
        a, b = Lit("A"), Lit("B")
        xor = (a & ~b) | (~a & b)
        assert truth_table(xor, ["A", "B"]) == 0b0110

    def test_input_order_matters(self):
        a, b = Lit("A"), Lit("B")
        expr = a & ~b
        assert truth_table(expr, ["A", "B"]) == 0b0010
        assert truth_table(expr, ["B", "A"]) == 0b0100

    def test_too_many_inputs_rejected(self):
        with pytest.raises(ValueError):
            truth_table(Lit("A"), [f"X{i}" for i in range(17)])

    @given(st.integers(min_value=0, max_value=7))
    def test_matches_direct_evaluation(self, i):
        a, b, c = Lit("A"), Lit("B"), Lit("C")
        expr = (a | b) & ~c
        table = truth_table(expr, ["A", "B", "C"])
        env = {"A": bool(i & 1), "B": bool(i & 2), "C": bool(i & 4)}
        assert bool((table >> i) & 1) == expr.evaluate(env)
