"""Unit tests for the experiment harness (repro.core.experiments)."""

import pytest

from repro.charlib import default_library
from repro.core import (
    average_shares,
    figure2ab_cell_distributions,
    figure2c_power_breakdown,
    figure3_summary,
)
from repro.core.experiments import Figure3Row, PowerShareRow


class TestDefaultLibraryCache:
    @pytest.mark.no_chaos  # the memo is deliberately bypassed while a fault plan is active
    def test_same_object_returned(self):
        a = default_library(10.0)
        b = default_library(10.0)
        assert a is b

    def test_distinct_corners_distinct_objects(self):
        assert default_library(10.0) is not default_library(300.0)


class TestFigure3Row:
    def test_saving_and_overhead_math(self):
        row = Figure3Row(
            circuit="x",
            baseline_power=100e-6,
            baseline_delay=1e-9,
            power={"p_a_d": 90e-6, "p_d_a": 110e-6},
            delay={"p_a_d": 1.2e-9, "p_d_a": 0.9e-9},
        )
        assert row.power_saving("p_a_d") == pytest.approx(10.0)
        assert row.power_saving("p_d_a") == pytest.approx(-10.0)
        assert row.delay_overhead("p_a_d") == pytest.approx(20.0)
        assert row.delay_overhead("p_d_a") == pytest.approx(-10.0)

    def test_summary_aggregation(self):
        rows = [
            Figure3Row("a", 1.0, 1.0, {"p_a_d": 0.9, "p_d_a": 0.95},
                       {"p_a_d": 1.0, "p_d_a": 1.0}),
            Figure3Row("b", 1.0, 1.0, {"p_a_d": 1.1, "p_d_a": 0.8},
                       {"p_a_d": 1.5, "p_d_a": 0.7}),
        ]
        summary = figure3_summary(rows)
        assert summary["p_a_d"]["avg_power_saving"] == pytest.approx(0.0)
        assert summary["p_a_d"]["circuits_improved"] == 1
        assert summary["p_d_a"]["circuits_improved"] == 2
        assert summary["p_a_d"]["max_delay_overhead"] == pytest.approx(50.0)


class TestAverageShares:
    def test_averaging(self):
        rows = [
            PowerShareRow("a", 300.0, 0.1, 0.3, 0.6),
            PowerShareRow("b", 300.0, 0.2, 0.3, 0.5),
            PowerShareRow("a", 10.0, 0.0, 0.4, 0.6),
        ]
        leak, internal, switching = average_shares(rows, 300.0)
        assert leak == pytest.approx(0.15)
        assert internal == pytest.approx(0.3)
        assert switching == pytest.approx(0.55)

    def test_missing_temperature_rejected(self):
        with pytest.raises(ValueError):
            average_shares([PowerShareRow("a", 300.0, 0.1, 0.3, 0.6)], 77.0)


class TestFigure2Harnesses:
    def test_figure2ab_returns_both_metrics(self):
        data = figure2ab_cell_distributions(temperatures=(300.0,))
        assert set(data) == {"delay", "energy"}
        assert 300.0 in data["delay"]
        summary = data["delay"][300.0]
        assert summary.p10 < summary.median < summary.p90

    def test_figure2c_clock_scales_dynamic_share(self):
        # A slower clock lowers dynamic power, raising the leakage
        # share at 300 K — the knob must behave monotonically.
        fast = figure2c_power_breakdown(
            circuits=["ctrl"], temperatures=(300.0,), clock_period=2e-10, vectors=64
        )
        slow = figure2c_power_breakdown(
            circuits=["ctrl"], temperatures=(300.0,), clock_period=2e-9, vectors=64
        )
        assert slow[0].leakage_share > fast[0].leakage_share

    def test_figure2c_activity_knob(self):
        quiet = figure2c_power_breakdown(
            circuits=["ctrl"], temperatures=(300.0,), pi_activity=0.05, vectors=64
        )
        busy = figure2c_power_breakdown(
            circuits=["ctrl"], temperatures=(300.0,), pi_activity=0.5, vectors=64
        )
        assert quiet[0].leakage_share > busy[0].leakage_share
