"""Job model, bounded weighted-fair queue, and circuit breaker.

The scheduling substrate of ``repro serve`` (ISSUE 8): content-address
stability for coalescing, capacity shedding with a retry-after hint,
smooth-WRR fairness without starvation, and the breaker state machine.
"""

import random
import threading
import time

import pytest

from repro.resilience.errors import QueueSaturatedError
from repro.server import CircuitBreaker, Job, JobQueue, JobSpec

# Exact saturation/shed accounting: an ambient server.queue_full fault
# plan would legitimately perturb it.
pytestmark = pytest.mark.no_chaos


def _job(i, tenant="default", priority=0, **spec_kw):
    return Job(f"job-{i:03d}", JobSpec(
        kind="probe", params={"echo": i}, tenant=tenant, priority=priority,
        **spec_kw,
    ))


class TestJobSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec(kind="mine_bitcoin")

    def test_params_must_be_plain_json(self):
        with pytest.raises(ValueError, match="plain JSON"):
            JobSpec(kind="probe", params={"bad": object()})

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline_s"):
            JobSpec(kind="probe", deadline_s=0)

    def test_key_ignores_scheduling_fields(self):
        # Same computation for two tenants at different priority must
        # coalesce: the key covers kind+params only.
        a = JobSpec(kind="probe", params={"echo": 1}, tenant="a", priority=2)
        b = JobSpec(kind="probe", params={"echo": 1}, tenant="b", deadline_s=9)
        assert a.job_key() == b.job_key()
        assert a.job_key() != JobSpec(kind="probe", params={"echo": 2}).job_key()

    def test_roundtrip(self):
        spec = JobSpec(kind="evaluate", params={"circuit": "ctrl"},
                       tenant="t", priority=1, deadline_s=5.0)
        assert JobSpec.from_dict(spec.to_dict()) == spec


class TestJobStateMachine:
    def test_single_terminal_transition(self):
        job = _job(1)
        job.start()
        job.finish(result={"ok": True})
        assert job.state == "done" and job.terminal
        with pytest.raises(RuntimeError, match="duplicate terminal"):
            job.finish(result={"ok": False})

    def test_failed_records_error_kind(self):
        job = _job(2)
        job.start()
        job.finish(error=ValueError("boom"))
        assert (job.state, job.error_kind) == ("failed", "ValueError")

    def test_requeue_refused_after_terminal(self):
        job = _job(3)
        job.start()
        job.requeued()
        assert job.state == "pending"
        job.finish(error="gone")
        with pytest.raises(RuntimeError):
            job.requeued()

    def test_wait_unblocks_on_finish(self):
        job = _job(4)
        threading.Timer(0.02, lambda: job.finish(result=1)).start()
        assert job.wait(timeout=5.0)

    def test_deadline_countdown(self):
        job = _job(5, deadline_s=100.0)
        assert 99.0 < job.remaining_s() <= 100.0
        assert _job(6).remaining_s() is None


class TestJobQueue:
    def test_fifo_within_tenant(self):
        queue = JobQueue(capacity=8)
        for i in range(3):
            queue.push(_job(i))
        assert [queue.pop(0).id for _ in range(3)] == \
            ["job-000", "job-001", "job-002"]

    def test_priority_preempts_fifo(self):
        queue = JobQueue(capacity=8)
        queue.push(_job(0, priority=0))
        queue.push(_job(1, priority=5))
        assert queue.pop(0).id == "job-001"

    def test_saturation_sheds_with_retry_after(self):
        queue = JobQueue(capacity=2)
        queue.push(_job(0))
        queue.push(_job(1))
        with pytest.raises(QueueSaturatedError) as exc_info:
            queue.push(_job(2))
        assert exc_info.value.retry_after_s > 0
        assert queue.depth() == 2

    def test_force_push_bypasses_bound(self):
        # Crash re-queues must never be shed: the client was already
        # told the job was admitted.
        queue = JobQueue(capacity=1)
        queue.push(_job(0))
        queue.push(_job(1), force=True)
        assert queue.depth() == 2

    def test_weighted_fair_share_without_starvation(self):
        queue = JobQueue(capacity=64, weights={"heavy": 3})
        for i in range(8):
            queue.push(_job(i, tenant="heavy"))
            queue.push(_job(100 + i, tenant="light"))
        first8 = [queue.pop(0).spec.tenant for _ in range(8)]
        # 3:1 shares — and the weight-1 tenant is served inside every
        # window of 4, not starved to the tail.
        assert first8.count("heavy") == 6
        assert first8.count("light") == 2
        assert "light" in first8[:4]

    def test_pop_timeout_and_close(self):
        queue = JobQueue(capacity=2)
        assert queue.pop(timeout=0.01) is None
        waiter = threading.Thread(target=lambda: queue.pop(timeout=30))
        waiter.start()
        time.sleep(0.05)
        queue.close()
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()

    def test_retry_after_tracks_service_rate(self):
        queue = JobQueue(capacity=4)
        for _ in range(20):
            queue.note_service_rate(2.0)
        queue.push(_job(0))
        queue.push(_job(1))
        # ~2 s/job x 2 queued: the hint reflects the backlog.
        assert queue.retry_after_s() > 1.0

    def test_retry_after_jittered_plus_minus_25_percent(self):
        # Shed clients must not resubmit in lockstep: the hint spreads
        # over [0.75, 1.25] x the EWMA estimate.
        queue = JobQueue(capacity=4, rng=random.Random(7))
        for _ in range(50):
            queue.note_service_rate(1.0)
        queue.push(_job(0))
        queue.push(_job(1))
        base = 2 * queue._service_s
        hints = [queue.retry_after_s() for _ in range(200)]
        assert all(0.75 * base <= h <= 1.25 * base for h in hints)
        assert min(hints) < 0.85 * base  # actually spread, not constant
        assert max(hints) > 1.15 * base
        assert len(set(hints)) > 100

    def test_saturation_error_hint_is_jittered_too(self):
        queue = JobQueue(capacity=1, rng=random.Random(3))
        for _ in range(50):
            queue.note_service_rate(1.0)
        queue.push(_job(0))
        hints = set()
        for i in range(20):
            with pytest.raises(QueueSaturatedError) as exc_info:
                queue.push(_job(1 + i))
            assert 0.75 <= exc_info.value.retry_after_s <= 1.25
            hints.add(exc_info.value.retry_after_s)
        assert len(hints) > 10


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=60.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=60.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_single_probe_then_close(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.05)
        breaker.record_failure()
        assert not breaker.allow()  # still cooling down
        time.sleep(0.06)
        assert breaker.allow()      # the one half-open probe
        assert not breaker.allow()  # everyone else keeps waiting
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.05)
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # cooldown restarted
