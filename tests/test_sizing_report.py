"""Tests for post-mapping gate sizing and signoff reports."""

import pytest

from repro.benchgen import build_circuit
from repro.charlib import default_library
from repro.mapping import map_to_gates, size_gates
from repro.mapping.cost import CostPolicy, p_d_a
from repro.sat import assert_equivalent
from repro.sta import (
    StaticTimingAnalyzer,
    analyze_power,
    critical_delay,
    full_signoff,
    render_power_report,
    render_timing_report,
)
from repro.synth import compress2rs


@pytest.fixture(scope="module")
def library():
    return default_library(10.0)


@pytest.fixture(scope="module")
def mapped(library):
    aig = compress2rs(build_circuit("int2float", "small"))
    return aig, map_to_gates(aig, library)


DELAY_FIRST = CostPolicy("d_p_a", ("delay", "power", "area"), epsilon=0.05)


class TestSizing:
    def test_preserves_function(self, library, mapped):
        aig, net = mapped
        sized, _ = size_gates(net, library, DELAY_FIRST)
        assert_equivalent(net.to_aig(library), sized.to_aig(library), "sizing")

    def test_delay_first_reduces_delay(self, library, mapped):
        _, net = mapped
        sized, report = size_gates(net, library, DELAY_FIRST)
        assert report.total_changes > 0
        assert critical_delay(sized, library) < critical_delay(net, library)

    def test_power_first_never_increases_power(self, library, mapped):
        _, net = mapped
        sized, _ = size_gates(net, library, p_d_a())
        clock = max(critical_delay(net, library), critical_delay(sized, library)) * 1.5
        before = analyze_power(net, library, clock, vectors=128).total
        after = analyze_power(sized, library, clock, vectors=128).total
        assert after <= before * 1.01

    def test_original_netlist_untouched(self, library, mapped):
        _, net = mapped
        cells_before = net.cell_counts()
        size_gates(net, library, DELAY_FIRST)
        assert net.cell_counts() == cells_before

    def test_gate_count_invariant(self, library, mapped):
        _, net = mapped
        sized, _ = size_gates(net, library, DELAY_FIRST)
        assert sized.num_gates == net.num_gates

    def test_converges_within_pass_budget(self, library, mapped):
        _, net = mapped
        _, report = size_gates(net, library, DELAY_FIRST, max_passes=10)
        assert report.passes <= 10


class TestReports:
    def test_timing_report_contains_path(self, library, mapped):
        _, net = mapped
        timing = StaticTimingAnalyzer(net, library).analyze()
        text = render_timing_report(net, library, timing)
        assert "critical delay" in text
        for name in timing.critical_path:
            assert name in text

    def test_power_report_decomposition(self, library, mapped):
        _, net = mapped
        power = analyze_power(net, library, 1e-9, vectors=128)
        text = render_power_report(net, library, power)
        assert "leakage" in text and "switching" in text
        assert "TOTAL" in text
        assert f"{net.num_gates:>6}" in text

    def test_full_signoff_default_clock(self, library, mapped):
        _, net = mapped
        text = full_signoff(net, library, vectors=128)
        assert "Timing report" in text
        assert "Power report" in text

    def test_full_signoff_explicit_clock(self, library, mapped):
        _, net = mapped
        text = full_signoff(net, library, clock_period=1e-9, vectors=128)
        assert "1000.00 ps" in text
