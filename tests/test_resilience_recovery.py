"""End-to-end recovery: injected faults, retry ladders, degradation.

The satellite acceptance test for the resilience layer: a rigged
:class:`FaultPlan` forces failures at each instrumented site and the
pipeline must recover — ladder retries for the Newton solver, analytic
fallback for characterization, quarantine for the cache — with the
right counters and, where recovery is exact, results matching the
no-fault run.
"""

import math

import numpy as np
import pytest

from repro import obs
from repro.device import CryoFinFET, default_nfet_5nm, default_pfet_5nm
from repro.pdk import cryo5_technology
from repro.resilience import FaultPlan, FaultSpec, StageTimeoutError, injecting
from repro.spice import DC, Circuit, Simulator, ramp
from repro.spice.engine import NEWTON_LADDER, ConvergenceError

VDD = 0.7


def make_inverter(load_f=1e-15):
    c = Circuit("inv")
    c.add_vsource("vdd", "vdd", "0", DC(VDD))
    c.add_vsource("vin", "a", "0", ramp(2e-11, 2e-11, 0.0, VDD))
    c.add_finfet("mp", "y", "a", "vdd", CryoFinFET(default_pfet_5nm(nfin=3)))
    c.add_finfet("mn", "y", "a", "0", CryoFinFET(default_nfet_5nm(nfin=2)))
    c.add_capacitor("cl", "y", "0", load_f)
    return c


class TestNewtonLadderRecovery:
    def test_rung0_is_nominal(self):
        from repro.spice.engine import GMIN, MAX_NEWTON, MAX_STEP, VTOL

        nominal = NEWTON_LADDER[0]
        assert nominal.max_step == MAX_STEP
        assert nominal.gmin == GMIN
        assert nominal.vtol == VTOL
        assert nominal.max_iter == MAX_NEWTON

    def test_rigged_nonconvergence_recovers_and_counts(self):
        """Satellite 3: N forced non-convergences, the ladder converges."""
        depth = 2  # rungs 0 and 1 fail, rung 2 succeeds
        plan = FaultPlan([FaultSpec("spice.newton", first_n=1, depth=depth)])
        with obs.Tracer() as tracer, injecting(plan):
            op = Simulator(make_inverter(), 10.0).dc_operating_point()
        # Rungs 0 and 1 are afflicted (one first-attempt fire + one
        # sustained retry fire), rung 2 converges.
        assert plan.fires() == {"spice.newton": 1}
        assert tracer.counters["faults.injected.spice.newton"] == depth
        assert tracer.counters["resilience.retry.spice.newton"] == depth
        assert tracer.counters["resilience.retry.spice.newton.rung1"] == 1
        assert tracer.counters["resilience.retry.spice.newton.rung2"] == 1
        assert tracer.counters["resilience.recovered.spice.newton"] == 1
        assert math.isfinite(op["y"])

    def test_recovered_dc_matches_no_fault(self):
        baseline = Simulator(make_inverter(), 10.0).dc_operating_point()
        plan = FaultPlan([FaultSpec("spice.newton", first_n=1, depth=1)])
        with injecting(plan):
            recovered = Simulator(make_inverter(), 10.0).dc_operating_point()
        # Rung 1 solves the same system with tighter damping; the fixed
        # point agrees to solver tolerance.
        assert recovered["y"] == pytest.approx(baseline["y"], abs=1e-6)

    def test_exhausted_ladder_raises(self):
        depth = len(NEWTON_LADDER)  # every rung afflicted
        plan = FaultPlan([FaultSpec("spice.newton", first_n=10_000, depth=depth)])
        with obs.Tracer() as tracer, injecting(plan):
            with pytest.raises(ConvergenceError):
                Simulator(make_inverter(), 10.0).dc_operating_point()
        assert tracer.counters["resilience.exhausted.spice.newton"] >= 1

    def test_transient_with_sporadic_faults_completes(self):
        """~10 % of Newton solves fail; every step must still converge."""
        plan = FaultPlan([FaultSpec("spice.newton", probability=0.1)], seed=3)
        with obs.Tracer() as tracer, injecting(plan):
            result = Simulator(make_inverter(), 10.0).transient(2e-10, 2e-12)
        assert plan.fires().get("spice.newton", 0) > 0
        assert tracer.counters["resilience.recovered.spice.newton"] > 0
        assert np.all(np.isfinite(result.voltage("y")))

    def test_transient_with_faults_matches_no_fault(self):
        baseline = Simulator(make_inverter(), 10.0).transient(2e-10, 2e-12)
        plan = FaultPlan([FaultSpec("spice.newton", probability=0.1)], seed=3)
        with injecting(plan):
            faulted = Simulator(make_inverter(), 10.0).transient(2e-10, 2e-12)
        np.testing.assert_allclose(
            faulted.voltage("y"), baseline.voltage("y"), atol=1e-6
        )


class TestCharlibDegradation:
    def _characterize(self, plan):
        from repro.charlib import characterize_library
        from repro.pdk.catalog import standard_cell_catalog

        cells = standard_cell_catalog()[:6]
        with obs.Tracer() as tracer:
            if plan is None:
                library = characterize_library(
                    cryo5_technology(), 10.0, cells=cells, cache=False
                )
            else:
                with injecting(plan):
                    library = characterize_library(
                        cryo5_technology(), 10.0, cells=cells, cache=False
                    )
        return library, tracer

    def test_no_fault_library_is_healthy(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)  # healthy-path test
        library, _ = self._characterize(None)
        assert not library.is_degraded
        assert library.degraded_arcs() == []

    def test_nan_measurement_sanitized_and_marked(self):
        plan = FaultPlan([FaultSpec("charlib.measure", first_n=1)])
        library, tracer = self._characterize(plan)
        assert library.is_degraded
        degraded = library.degraded_arcs()
        assert len(degraded) == 1
        assert tracer.counters["charlib.arc.degraded"] == 1
        assert tracer.counters["charlib.sanitized_points"] >= 1
        # Every table must be finite after sanitization.
        for cell in library.cells.values():
            for arc in cell.arcs:
                for row in arc.cell_rise.values:
                    assert all(math.isfinite(v) for v in row)

    def test_degraded_library_not_cached(self):
        from repro.charlib import characterize_library
        from repro.core import ArtifactCache
        from repro.pdk.catalog import standard_cell_catalog

        cells = standard_cell_catalog()[:4]
        cache = ArtifactCache()
        plan = FaultPlan([FaultSpec("charlib.measure", first_n=1)])
        with injecting(plan):
            degraded = characterize_library(
                cryo5_technology(), 10.0, cells=cells, cache=cache
            )
        assert degraded.is_degraded
        # The degraded build was vetoed: a clean run recomputes and is healthy.
        clean = characterize_library(cryo5_technology(), 10.0, cells=cells, cache=cache)
        assert not clean.is_degraded

    def test_degradation_reaches_flow_result_and_liberty(self):
        from repro.benchgen import build_circuit
        from repro.charlib import characterize_library, write_liberty
        from repro.core import CryoSynthesisFlow

        plan = FaultPlan([FaultSpec("charlib.measure", first_n=1)])
        with injecting(plan):
            library = characterize_library(cryo5_technology(), 10.0, cache=False)
        assert library.is_degraded
        text = write_liberty(library)
        assert "degraded arcs (analytic fallback)" in text

        result = CryoSynthesisFlow(library).run(build_circuit("ctrl", "small"))
        assert result.is_degraded
        assert tuple(library.degraded_arcs()) == result.degraded
        assert result.to_dict()["degraded"] == library.degraded_arcs()

    def test_healthy_result_json_has_no_degraded_key(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)  # healthy-path test
        from repro.benchgen import build_circuit
        from repro.charlib import default_library
        from repro.core import CryoSynthesisFlow

        result = CryoSynthesisFlow(default_library(10.0)).run(
            build_circuit("ctrl", "small")
        )
        assert not result.is_degraded
        assert "degraded" not in result.to_dict()


class TestSpiceBackendFallback:
    def test_failed_arc_falls_back_to_analytic(self):
        from repro.charlib.analytic import AnalyticCharacterizer
        from repro.charlib.spice_char import SpiceCharacterizer
        from repro.pdk.catalog import standard_cell_catalog

        tech = cryo5_technology()
        cell = next(
            c for c in standard_cell_catalog() if not c.is_sequential
        )
        depth = len(NEWTON_LADDER)
        plan = FaultPlan([FaultSpec("spice.newton", first_n=1, depth=depth)])
        with obs.Tracer() as tracer, injecting(plan):
            result = SpiceCharacterizer(tech, 10.0).characterize_cell(cell)
        assert len(result.degraded_arcs) >= 1
        assert tracer.counters["charlib.arc.degraded"] >= 1
        # The fallback tables are the analytic ones (on the same
        # reduced grid the spice backend characterizes over).
        analytic = AnalyticCharacterizer(tech, 10.0).characterize_cell(
            cell, tech.slew_grid[1::3], tech.load_grid[1::3]
        )
        first_degraded = result.degraded_arcs[0]
        pin, out = first_degraded.split("->")
        assert result.arc(pin, out).cell_rise == analytic.arc(pin, out).cell_rise


class TestCalibrationResilience:
    def _sweeps(self):
        from repro.device.bsimcmg import default_nfet_5nm
        from repro.device.measurement import CryoProbeStation, perturbed_silicon

        station = CryoProbeStation(perturbed_silicon(default_nfet_5nm(), seed=11))
        return [
            station.sweep_ids_vgs(vds, temp, points=31)
            for vds in (0.05, 0.7)
            for temp in (300.0, 10.0)
        ]

    def test_empty_sweeps_is_calibration_error(self):
        from repro.device.calibration import calibrate
        from repro.device.bsimcmg import default_nfet_5nm
        from repro.resilience import CalibrationError

        with pytest.raises(CalibrationError):
            calibrate([], default_nfet_5nm())

    def test_injected_nan_residual_sanitized(self):
        from repro.device.bsimcmg import default_nfet_5nm
        from repro.device.calibration import calibrate

        plan = FaultPlan([FaultSpec("calibration.residual", first_n=2)])
        with obs.Tracer() as tracer, injecting(plan):
            result = calibrate(self._sweeps(), default_nfet_5nm(), max_iterations=40)
        assert tracer.counters["resilience.sanitized.calibration"] >= 2
        assert math.isfinite(result.rms_log_error)


class TestStageTimeouts:
    def _runner(self, stages, **kwargs):
        from repro.charlib import default_library
        from repro.core import DesignContext
        from repro.core.stages import FlowRunner

        context = DesignContext.from_library(default_library(10.0))
        return FlowRunner(context, stages, **kwargs)

    def test_stage_timeout_raises_and_counts(self):
        import time

        from repro.core.stages import Stage

        slow = Stage(
            name="slow",
            inputs=(),
            output="out",
            compute=lambda ctx, ins: time.sleep(5.0),
            timeout_s=0.05,
        )
        with obs.Tracer() as tracer:
            with pytest.raises(StageTimeoutError) as info:
                self._runner([slow]).run()
        assert info.value.timeout_s == 0.05
        assert tracer.counters["stage.timeout.slow"] == 1

    def test_deadline_clips_stage_budget(self):
        import time

        from repro.core.stages import Stage

        slow = Stage(
            name="slow",
            inputs=(),
            output="a",
            compute=lambda ctx, ins: time.sleep(5.0),
        )
        # No per-stage timeout: the flow deadline alone bounds the stage.
        with pytest.raises(StageTimeoutError, match="slow"):
            self._runner([slow], deadline_s=0.05).run()

    def test_exhausted_deadline_blocks_stage(self):
        from repro.core.stages import Stage

        never_runs = Stage(
            name="first", inputs=(), output="a", compute=lambda ctx, ins: 1
        )
        with obs.Tracer() as tracer:
            with pytest.raises(StageTimeoutError, match="first"):
                self._runner([never_runs], deadline_s=0.0).run()
        assert tracer.counters["stage.deadline_exceeded"] == 1

    def test_fast_stages_unaffected_by_budgets(self):
        from repro.core.stages import Stage

        stage = Stage(
            name="fast",
            inputs=(),
            output="out",
            compute=lambda ctx, ins: 42,
            timeout_s=30.0,
        )
        artifacts = self._runner([stage], deadline_s=30.0).run()
        assert artifacts["out"] == 42

    def test_stage_failure_annotated(self):
        from repro.core.stages import Stage

        def boom(ctx, ins):
            raise RuntimeError("stage body failed")

        stage = Stage(name="exploding", inputs=(), output="out", compute=boom)
        with obs.Tracer() as tracer:
            with pytest.raises(RuntimeError) as info:
                self._runner([stage]).run()
        assert info.value.stage == "exploding"
        assert tracer.counters["stage.error.exploding"] == 1


class TestEndToEndFaultedEvaluation:
    def test_run_scenarios_under_faults_matches_shape_and_degrades(self):
        from repro.benchgen import build_circuit
        from repro.charlib import characterize_library
        from repro.core import ArtifactCache, DesignContext, run_scenarios

        aig = build_circuit("ctrl", "small")
        plan = FaultPlan(
            [
                FaultSpec("charlib.measure", probability=0.001),
                FaultSpec("spice.newton", probability=0.1),
                FaultSpec("cache.disk", probability=0.05),
            ],
            seed=7,
        )
        with injecting(plan):
            library = characterize_library(cryo5_technology(), 10.0, cache=False)
            context = DesignContext.from_library(library, cache=ArtifactCache())
            results = run_scenarios(aig, context=context, vectors=64, jobs=4)
        assert set(results) == {"baseline", "p_a_d", "p_d_a"}
        assert plan.fires().get("charlib.measure", 0) > 0
        for result in results.values():
            assert result.is_degraded
            assert math.isfinite(result.total_power)
