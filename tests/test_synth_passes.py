"""Tests for the AIG optimization passes.

Every pass is checked for functional equivalence via CEC on randomized
networks (the property that matters) plus targeted behaviour checks.
"""

import random

import pytest

from repro.sat import assert_equivalent
from repro.synth import (
    AIG,
    balance,
    compress2rs,
    compute_choices,
    enumerate_cuts,
    lit_not,
    map_luts,
    mffc_size,
    mfs,
    node_activities,
    refactor,
    resub,
    rewrite,
    signal_probabilities,
    simulated_activities,
)


def random_network(seed: int, n_pis=6, n_ops=80, n_pos=3) -> AIG:
    rng = random.Random(seed)
    g = AIG()
    lits = [g.add_pi() for _ in range(n_pis)]
    for _ in range(n_ops):
        a, b = rng.choice(lits), rng.choice(lits)
        op = rng.choice(["add_and", "add_or", "add_xor", "add_and"])
        lits.append(getattr(g, op)(a ^ rng.randint(0, 1), b ^ rng.randint(0, 1)))
    for i in range(n_pos):
        g.add_po(lits[-(i + 1)])
    return g.cleanup()


class TestCuts:
    def test_every_and_gets_cuts(self):
        g = random_network(0)
        cuts = enumerate_cuts(g, k=4)
        for node in g.and_nodes():
            assert cuts[node], node

    def test_cut_sizes_bounded(self):
        g = random_network(1)
        cuts = enumerate_cuts(g, k=4, max_cuts=6)
        for node in g.and_nodes():
            non_trivial = [c for c in cuts[node] if c.leaves != (node,)]
            assert all(len(c.leaves) <= 4 for c in non_trivial)
            assert len(non_trivial) <= 6

    def test_minimum_k(self):
        with pytest.raises(ValueError):
            enumerate_cuts(random_network(2), k=1)

    def test_mffc_at_least_one(self):
        g = random_network(3)
        cuts = enumerate_cuts(g, k=4)
        fanouts = g.fanout_counts()
        for node in g.and_nodes()[-10:]:
            for cut in cuts[node][:2]:
                if node in cut.leaves:
                    continue
                assert mffc_size(g, node, cut.leaves, fanouts) >= 1


class TestRewrite:
    @pytest.mark.parametrize("seed", range(6))
    def test_equivalence(self, seed):
        g = random_network(seed)
        assert_equivalent(g, rewrite(g), f"rewrite seed {seed}")

    def test_reduces_redundant_networks(self):
        total_before = total_after = 0
        for seed in range(8):
            g = random_network(seed, n_ops=120)
            total_before += g.num_ands
            total_after += rewrite(g).num_ands
        assert total_after < total_before

    def test_empty_network(self):
        g = AIG()
        g.add_pi()
        g.add_po(2)
        assert rewrite(g).num_ands == 0

    def test_zero_gain_mode_runs(self):
        g = random_network(10)
        assert_equivalent(g, rewrite(g, use_zero_gain=True), "rewrite -z")


class TestRefactor:
    @pytest.mark.parametrize("seed", range(6))
    def test_equivalence(self, seed):
        g = random_network(seed)
        assert_equivalent(g, refactor(g), f"refactor seed {seed}")

    def test_handles_wide_cones(self):
        g = random_network(20, n_pis=10, n_ops=200)
        r = refactor(g, k=8)
        assert_equivalent(g, r, "refactor wide")
        assert r.num_ands <= g.num_ands


class TestBalance:
    @pytest.mark.parametrize("seed", range(6))
    def test_equivalence(self, seed):
        g = random_network(seed)
        assert_equivalent(g, balance(g), f"balance seed {seed}")

    def test_chain_becomes_tree(self):
        g = AIG()
        lits = [g.add_pi() for _ in range(16)]
        acc = lits[0]
        for lit in lits[1:]:
            acc = g.add_and(acc, lit)
        g.add_po(acc)
        balanced = balance(g)
        assert_equivalent(g, balanced, "chain")
        assert balanced.depth() == 4

    def test_never_increases_depth_on_trees(self):
        for seed in range(5):
            g = random_network(seed, n_ops=60)
            assert balance(g).depth() <= g.depth()


class TestResub:
    @pytest.mark.parametrize("seed", range(6))
    def test_equivalence(self, seed):
        g = random_network(seed)
        assert_equivalent(g, resub(g), f"resub seed {seed}")

    def test_finds_shared_logic(self):
        # Two structurally distinct copies of the same function: resub
        # (0-resub via signatures+SAT) must merge them.
        g = AIG()
        a, b, c = g.add_pi(), g.add_pi(), g.add_pi()
        x1 = g.add_or(g.add_and(a, b), g.add_and(a, c))
        x2 = g.add_and(a, g.add_or(b, c))  # same function
        g.add_po(g.add_xor(x1, g.add_and(x2, c)))
        result = resub(g)
        assert_equivalent(g, result, "shared logic")
        assert result.num_ands < g.num_ands


class TestActivity:
    def test_pi_probability_respected(self):
        g = random_network(0)
        probs = signal_probabilities(g, pi_probability=0.3)
        for node in g.pis:
            assert probs[node] == pytest.approx(0.3)

    def test_and_probability_product(self):
        g = AIG()
        a, b = g.add_pi(), g.add_pi()
        x = g.add_and(a, b)
        g.add_po(x)
        probs = signal_probabilities(g)
        assert probs[x >> 1] == pytest.approx(0.25)

    def test_activity_bounds(self):
        g = random_network(4)
        for alpha in node_activities(g):
            assert 0.0 <= alpha <= 0.5 + 1e-12

    def test_simulated_close_to_probabilistic_on_tree(self):
        g = AIG()
        a, b = g.add_pi(), g.add_pi()
        g.add_po(g.add_and(a, b))
        sim = simulated_activities(g, vectors=4096)
        prob = node_activities(g)
        assert sim[-1] == pytest.approx(prob[-1], abs=0.05)

    def test_invalid_inputs(self):
        g = random_network(5)
        with pytest.raises(ValueError):
            signal_probabilities(g, pi_probability=1.5)
        with pytest.raises(ValueError):
            simulated_activities(g, vectors=1)


class TestLutMapping:
    @pytest.mark.parametrize("seed", range(4))
    def test_roundtrip_equivalence(self, seed):
        g = random_network(seed)
        net = map_luts(g, k=6)
        assert_equivalent(g, net.to_aig(), f"lutmap seed {seed}")

    def test_fanin_bound_respected(self):
        g = random_network(7, n_ops=150)
        net = map_luts(g, k=4)
        assert net.max_fanin() <= 4

    def test_power_modes(self):
        g = random_network(8)
        for mode in ("off", "tiebreak", "primary"):
            net = map_luts(g, k=5, power_mode=mode)
            assert_equivalent(g, net.to_aig(), f"lutmap {mode}")

    def test_unknown_power_mode(self):
        with pytest.raises(ValueError):
            map_luts(random_network(9), power_mode="bogus")

    def test_depth_no_worse_than_aig(self):
        g = random_network(11, n_ops=150)
        net = map_luts(g, k=6)
        assert net.depth() <= g.depth()


class TestChoices:
    def test_classes_found(self):
        g = random_network(12, n_ops=150)
        choices = compute_choices(g)
        assert choices.num_classes_with_choices > 0

    def test_mapping_with_choices_equivalent(self):
        for seed in range(4):
            g = random_network(seed, n_ops=100)
            choices = compute_choices(g)
            net = map_luts(g, k=6, choices=choices)
            assert_equivalent(g, net.to_aig(), f"choices seed {seed}")

    def test_choices_never_hurt_lut_count(self):
        improved = 0
        for seed in range(5):
            g = random_network(seed, n_ops=120)
            plain = map_luts(g, k=6).num_luts
            with_choices = map_luts(g, k=6, choices=compute_choices(g)).num_luts
            if with_choices <= plain:
                improved += 1
        assert improved >= 3  # choices help in the large majority

    def test_interface_change_rejected(self):
        g = random_network(13)

        def bad_script(aig):
            h = AIG()
            h.add_pi()
            h.add_po(2)
            return h

        with pytest.raises(ValueError):
            compute_choices(g, scripts=[lambda a: a, bad_script])


class TestMfs:
    @pytest.mark.parametrize("seed", range(4))
    def test_equivalence(self, seed):
        g = random_network(seed, n_ops=120)
        net = map_luts(g, k=5)
        simplified, report = mfs(net)
        assert_equivalent(net.to_aig(), simplified.to_aig(), f"mfs seed {seed}")
        assert report.luts_examined > 0

    def test_power_aware_mode(self):
        g = random_network(14, n_ops=120)
        net = map_luts(g, k=5)
        acts = [0.5] * (net.num_pis + net.num_luts + 1)
        simplified, _ = mfs(net, power_aware=True, activities=acts)
        assert_equivalent(net.to_aig(), simplified.to_aig(), "mfs -p")

    def test_max_luts_budget(self):
        g = random_network(15, n_ops=150)
        net = map_luts(g, k=5)
        _, report = mfs(net, max_luts=3)
        assert report.luts_examined <= 3


class TestScripts:
    @pytest.mark.parametrize("seed", range(3))
    def test_compress2rs_equivalence_and_reduction(self, seed):
        g = random_network(seed, n_ops=200)
        result = compress2rs(g)
        assert_equivalent(g, result, f"c2rs seed {seed}")
        assert result.num_ands <= g.num_ands

    def test_stage2_equivalence(self):
        from repro.synth import power_aware_restructure

        g = compress2rs(random_network(16, n_ops=150))
        for mode in ("tiebreak", "primary"):
            result = power_aware_restructure(g, power_mode=mode)
            assert_equivalent(g, result, f"stage2 {mode}")
