"""Tests for waveform measurement utilities."""

import numpy as np
import pytest

from repro.spice import DC, Circuit, Simulator, crossing_time, supply_energy
from repro.spice.analysis import propagation_delay, transition_time
from repro.spice.engine import TransientResult


def synthetic_result():
    """Hand-built waveforms: input rises 1->9 ns, output falls 4->6 ns."""
    t = np.linspace(0.0, 10e-9, 101)
    vin = np.clip((t - 1e-9) / 8e-9, 0.0, 1.0)
    vout = 1.0 - np.clip((t - 4e-9) / 2e-9, 0.0, 1.0)
    i_src = np.full_like(t, -1e-3)
    return TransientResult(
        time=t,
        voltages={"in": vin, "out": vout},
        source_currents={"vdd": i_src},
    )


class TestCrossingTime:
    def test_rising_crossing_interpolated(self):
        r = synthetic_result()
        t50 = crossing_time(r.time, r.voltage("in"), 0.5, rising=True)
        assert t50 == pytest.approx(5e-9, rel=0.02)

    def test_falling_crossing(self):
        r = synthetic_result()
        t50 = crossing_time(r.time, r.voltage("out"), 0.5, rising=False)
        assert t50 == pytest.approx(5e-9, rel=0.02)

    def test_after_filter(self):
        t = np.linspace(0, 1, 11)
        w = np.array([0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0], dtype=float)
        first = crossing_time(t, w, 0.5, rising=True)
        later = crossing_time(t, w, 0.5, rising=True, after=first + 0.05)
        assert later > first

    def test_no_crossing_raises(self):
        t = np.linspace(0, 1, 5)
        w = np.zeros(5)
        with pytest.raises(ValueError):
            crossing_time(t, w, 0.5, rising=True)


class TestDerivedMeasurements:
    def test_propagation_delay_synthetic(self):
        r = synthetic_result()
        d = propagation_delay(r, "in", "out", vdd=1.0, input_rising=True)
        assert d == pytest.approx(0.0, abs=0.2e-9)  # both cross 0.5 at ~5 ns

    def test_transition_time_scaling(self):
        r = synthetic_result()
        # Output falls 1->0 over 2 ns; 80->20 section is 1.2 ns; scaled
        # by 0.6 -> 2.0 ns.
        s = transition_time(r, "out", vdd=1.0, rising=False)
        assert s == pytest.approx(2e-9, rel=0.05)

    def test_supply_energy_constant_current(self):
        r = synthetic_result()
        # -1 mA for 10 ns at 1 V -> +10 pJ delivered.
        e = supply_energy(r, "vdd", vdd=1.0)
        assert e == pytest.approx(10e-12, rel=1e-6)

    def test_supply_energy_window_too_small(self):
        r = synthetic_result()
        with pytest.raises(ValueError):
            supply_energy(r, "vdd", 1.0, t_start=9.99e-9, t_stop=9.995e-9)

    def test_missing_output_crossing_raises(self):
        t = np.linspace(0, 1e-9, 11)
        r = TransientResult(
            time=t,
            voltages={"a": np.linspace(0, 1, 11), "y": np.full(11, 0.4)},
            source_currents={},
        )
        with pytest.raises(ValueError):
            propagation_delay(r, "a", "y", vdd=1.0, input_rising=True)


class TestDcSweepVtc:
    def test_inverter_switching_threshold_near_midrail(self):
        from repro.device import CryoFinFET, default_nfet_5nm, default_pfet_5nm

        c = Circuit()
        c.add_vsource("vdd", "vdd", "0", DC(0.7))
        c.add_vsource("vin", "a", "0", DC(0.0))
        c.add_finfet("mp", "y", "a", "vdd", CryoFinFET(default_pfet_5nm(nfin=3)))
        c.add_finfet("mn", "y", "a", "0", CryoFinFET(default_nfet_5nm(nfin=2)))
        sweep = Simulator(c).dc_sweep("vin", np.linspace(0.0, 0.7, 29))
        outputs = np.array([op["y"] for op in sweep])
        inputs = np.linspace(0.0, 0.7, 29)
        # Switching threshold: where vout crosses vin.
        idx = int(np.argmin(np.abs(outputs - inputs)))
        assert 0.25 < inputs[idx] < 0.45
