"""Kernel performance-trajectory runner.

Times the computational kernels the flow is built on — AIG simulation,
cut enumeration, SAT, SPICE transients (both stamping kernels), a
charlib SPICE arc (scalar vs vector), a whole NLDM grid through the
trajectory-batched solver (batch vs vector), a full SPICE cell
characterization, and a device Monte-Carlo sweep — and writes one
machine-readable ``BENCH_kernels.json``.  CI's bench-smoke job runs
this once per change and archives the JSON, so the numbers form a
trajectory across commits rather than a one-off measurement.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/kernels.py [-o BENCH_kernels.json]
        [--repeats N] [--assert-batch-default] [--assert-speedup MIN]

Each section reports best-of-``repeats`` wall time; the SPICE and
charlib sections additionally report their kernel pair and the derived
speedup.  Observability counters recorded during the run
(``spice.kernel.*``, ``spice.batch.*``, ``charlib.spice.kernel.*``,
Newton statistics) are embedded under ``"counters"`` so the artifact
also proves *which* kernel path executed — ``--assert-batch-default``
fails the run if the default path was not the trajectory-batched one,
and ``--assert-speedup MIN`` fails it if the whole-grid batch kernel
beats the per-instance vector loop by less than ``MIN``x.

See ``docs/PERFORMANCE.md`` for the schema and how to add a section.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time


def best_of(fn, repeats: int) -> float:
    """Best wall-time of ``repeats`` runs [s] (min filters scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ---------------------------------------------------------------------------
# Sections.  Each returns a JSON-ready dict.


def bench_aig_simulation(repeats: int) -> dict:
    from repro.benchgen import build_circuit

    aig = build_circuit("adder", "small")
    rng = random.Random(0)
    words = [rng.getrandbits(1024) for _ in aig.pis]
    return {
        "seconds": best_of(lambda: aig.simulate(words, width=1024), repeats),
        "detail": f"adder/small ({aig.num_ands} ands), 1024-bit words",
    }


def bench_cut_enumeration(repeats: int) -> dict:
    from repro.benchgen import build_circuit
    from repro.synth import enumerate_cuts

    aig = build_circuit("adder", "small")
    return {
        "seconds": best_of(lambda: enumerate_cuts(aig, k=4, max_cuts=8), repeats),
        "detail": "adder/small, k=4, max_cuts=8",
    }


def bench_sat(repeats: int) -> dict:
    from repro.sat import Solver

    def php():
        pigeons, holes = 6, 5
        solver = Solver()

        def var(p, h):
            return p * holes + h + 1

        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        assert solver.solve() is False

    return {
        "seconds": best_of(php, repeats),
        "detail": "pigeonhole PHP(6,5), UNSAT",
    }


def _inverter_transient(settings):
    from repro.device import CryoFinFET, default_nfet_5nm, default_pfet_5nm
    from repro.pdk import cryo5_technology
    from repro.spice import Circuit, DC, Simulator, ramp

    tech = cryo5_technology()
    circuit = Circuit("inv")
    circuit.add_vsource("vdd", "vdd", "0", DC(tech.vdd))
    circuit.add_vsource("vin", "a", "0", ramp(2e-11, 1e-11, 0.0, tech.vdd))
    circuit.add_finfet("mp", "y", "a", "vdd", CryoFinFET(default_pfet_5nm(nfin=3)))
    circuit.add_finfet("mn", "y", "a", "0", CryoFinFET(default_nfet_5nm(nfin=2)))
    circuit.add_capacitor("cl", "y", "0", 2e-15)
    return Simulator(circuit, 10.0, settings=settings).transient(2e-10, 1e-12)


def bench_spice_transient(repeats: int) -> dict:
    from repro.spice import SimulatorSettings

    scalar = best_of(
        lambda: _inverter_transient(SimulatorSettings(kernel="scalar")), repeats
    )
    vector = best_of(
        lambda: _inverter_transient(SimulatorSettings(kernel="vector")), repeats
    )
    return {
        "scalar_seconds": scalar,
        "vector_seconds": vector,
        "speedup": scalar / vector,
        "detail": "CMOS inverter, 10 K, 200 ps @ 1 ps trapezoidal",
    }


def _charlib_arc(settings):
    from repro.charlib.spice_char import SpiceCharacterizer
    from repro.pdk import cryo5_technology
    from repro.pdk.catalog import make_aoi

    char = SpiceCharacterizer(cryo5_technology(), 77.0, settings=settings)
    cell = make_aoi("221", 2)
    return char.measure_arc(cell, "A1", "Y", True, 2e-11, 2e-15)


def bench_charlib_arc(repeats: int) -> dict:
    from repro.spice import SimulatorSettings

    scalar = best_of(
        lambda: _charlib_arc(SimulatorSettings(kernel="scalar")), repeats
    )
    vector = best_of(
        lambda: _charlib_arc(SimulatorSettings(kernel="vector")), repeats
    )
    return {
        "scalar_seconds": scalar,
        "vector_seconds": vector,
        "speedup": scalar / vector,
        "detail": "AOI221x2 A1->Y rising arc, SPICE backend, 77 K",
    }


def _charlib_full_grid(settings):
    from repro.charlib.spice_char import SpiceCharacterizer
    from repro.pdk import cryo5_technology
    from repro.pdk.catalog import make_inv

    tech = cryo5_technology()
    char = SpiceCharacterizer(tech, 77.0, settings=settings)
    return char.characterize_cell(make_inv(1), tech.slew_grid, tech.load_grid)


def bench_charlib_full_arc(repeats: int) -> dict:
    """Whole 7x7 NLDM grid: one trajectory batch vs the serial loop.

    This is the workload the batch kernel exists for — all 98 arc
    transients of the grid advance in lockstep through one batched
    Newton solve per time step instead of 98 serial transients.  Both
    paths are single-shot (the grid takes seconds; best-of-``repeats``
    would triple the bench-smoke budget for noise filtering the gate's
    tolerance already absorbs).
    """
    from repro.spice import SimulatorSettings

    batch = best_of(lambda: _charlib_full_grid(SimulatorSettings(kernel="batch")), 1)
    vector = best_of(lambda: _charlib_full_grid(SimulatorSettings(kernel="vector")), 1)
    return {
        "batch_seconds": batch,
        "vector_seconds": vector,
        "speedup": vector / batch,
        "detail": "INVx1 full 7x7 slew/load grid, SPICE backend, 77 K, single-shot",
    }


def bench_charlib_cell_flow(repeats: int) -> dict:
    """Full characterization entry point on the default (batch) path."""
    from repro.charlib import characterize_library
    from repro.pdk import cryo5_technology
    from repro.pdk.catalog import make_nand

    def run():
        library = characterize_library(
            cryo5_technology(),
            77.0,
            cells=[make_nand(2, 1)],
            backend="spice",
            name="bench_nand2_77k",
            cache=False,
        )
        assert not library.degraded_arcs()

    return {
        "seconds": best_of(run, 1),
        "detail": "characterize_library, NAND2x1, SPICE backend, 77 K, single-shot",
    }


def bench_monte_carlo(repeats: int) -> dict:
    from repro.device import default_nfet_5nm
    from repro.device.montecarlo import mc_device_metric

    def run():
        result = mc_device_metric(
            lambda dev, t: dev.off_current(0.7, t),
            default_nfet_5nm(),
            temperature=10.0,
            n_samples=64,
            seed=0,
        )
        assert result.std >= 0.0

    return {
        "seconds": best_of(run, repeats),
        "detail": "64-sample I_off spread at 10 K",
    }


SECTIONS = {
    "aig_simulation": bench_aig_simulation,
    "cut_enumeration": bench_cut_enumeration,
    "sat": bench_sat,
    "spice_transient": bench_spice_transient,
    "charlib_arc": bench_charlib_arc,
    "charlib_full_arc": bench_charlib_full_arc,
    "charlib_cell_flow": bench_charlib_cell_flow,
    "monte_carlo": bench_monte_carlo,
}


def run_benchmarks(repeats: int) -> dict:
    from repro import obs
    from repro.spice import default_kernel

    results = {}
    with obs.Tracer() as tracer:
        for name, fn in SECTIONS.items():
            print(f"[bench] {name} ...", flush=True)
            results[name] = fn(repeats)
    report = {
        "schema": "repro-bench-kernels/1",
        "repeats": repeats,
        "default_kernel": default_kernel(),
        "results": results,
        "counters": {
            k: v for k, v in sorted(tracer.counters.items())
            if k.startswith(("spice.", "charlib."))
        },
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_kernels.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--assert-batch-default",
        action="store_true",
        help="fail unless the default-configured runs used the trajectory-"
             "batched kernel",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="MIN",
        help="fail unless the whole-grid charlib_full_arc section shows at "
             "least MINx batch-over-vector speedup",
    )
    args = parser.parse_args(argv)

    report = run_benchmarks(args.repeats)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    for name, entry in report["results"].items():
        if "speedup" in entry:
            pair = [
                f"{key.removesuffix('_seconds')} {entry[key] * 1e3:.1f} ms"
                for key in ("scalar_seconds", "vector_seconds", "batch_seconds")
                if key in entry
            ]
            print(f"[bench] {name}: {', '.join(pair)} ({entry['speedup']:.2f}x)")
        else:
            print(f"[bench] {name}: {entry['seconds'] * 1e3:.2f} ms")
    print(f"[bench] wrote {args.output}")

    if args.assert_batch_default:
        if report["default_kernel"] != "batch":
            print("[bench] FAIL: default kernel is not 'batch'", file=sys.stderr)
            return 1
        if report["counters"].get("spice.batch.runs", 0) <= 0:
            print(
                "[bench] FAIL: batch kernel path never executed "
                "(spice.batch.runs counter is 0)",
                file=sys.stderr,
            )
            return 1
        print("[bench] batch kernel default confirmed by obs counters")

    if args.assert_speedup is not None:
        speedup = report["results"]["charlib_full_arc"]["speedup"]
        if speedup < args.assert_speedup:
            print(
                f"[bench] FAIL: charlib_full_arc batch speedup {speedup:.2f}x "
                f"< required {args.assert_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"[bench] charlib_full_arc speedup {speedup:.2f}x >= "
            f"{args.assert_speedup:.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
