"""Extension study: supply-voltage scaling at cryogenic temperature.

The paper's discussion points out that its flow is "an ideal basis"
for further cryogenic optimization.  The steep subthreshold swing at
10 K (band-tail-limited ~9 mV/dec instead of ~75 mV/dec) is the
classic enabler: the same ON/OFF ratio is reached at a much lower
threshold overdrive, so V_dd can be scaled down aggressively and
dynamic power drops quadratically.

This bench characterizes the library at several supplies for both
300 K and 10 K, maps the same circuit, and reports the power/delay
trade-off — demonstrating that V_dd scaling at 10 K buys far more
power than at 300 K for the same relative delay cost.
"""

from dataclasses import replace

from repro.benchgen import build_circuit
from repro.charlib import characterize_library
from repro.mapping import map_to_gates
from repro.pdk import cryo5_technology
from repro.sta import analyze_power, critical_delay
from repro.synth import compress2rs

SUPPLIES = (0.7, 0.55, 0.45)


def _run():
    aig = compress2rs(build_circuit("cavlc", "small"))
    rows = []
    for temperature in (300.0, 10.0):
        for vdd in SUPPLIES:
            tech = replace(cryo5_technology(), vdd=vdd)
            library = characterize_library(tech, temperature)
            net = map_to_gates(aig, library)
            delay = critical_delay(net, library)
            power = analyze_power(net, library, clock_period=1e-9, vectors=256)
            rows.append(
                {
                    "temperature": temperature,
                    "vdd": vdd,
                    "delay": delay,
                    "total": power.total,
                    "leakage_share": power.leakage_share,
                }
            )
    return rows


def test_extension_vdd_scaling(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nExtension: Vdd scaling (cavlc @ 1 GHz)")
    print(f"{'T [K]':>7} {'Vdd [V]':>8} {'delay [ps]':>11} {'power [uW]':>11}"
          f" {'leakage share':>14}")
    for row in rows:
        print(
            f"{row['temperature']:7.0f} {row['vdd']:8.2f}"
            f" {row['delay'] * 1e12:11.2f} {row['total'] * 1e6:11.3f}"
            f" {row['leakage_share']:14.4%}"
        )

    def pick(t, v):
        return next(r for r in rows if r["temperature"] == t and r["vdd"] == v)

    # Dynamic power drops roughly quadratically with Vdd at both corners.
    for t in (300.0, 10.0):
        full = pick(t, 0.7)
        low = pick(t, 0.45)
        ratio = low["total"] / full["total"]
        assert ratio < 0.55, f"Vdd scaling must cut power strongly at {t} K"

    # The cryogenic advantage: at 10 K the low-Vdd corner keeps leakage
    # negligible (steep swing preserves the ON/OFF ratio), while at
    # 300 K the leakage share grows as the overdrive shrinks.
    assert pick(10.0, 0.45)["leakage_share"] < 1e-4
    assert pick(300.0, 0.45)["leakage_share"] > pick(300.0, 0.7)["leakage_share"]

    # Delay penalty of scaling to 0.45 V is bounded at 10 K (the
    # circuit still works in strong inversion thanks to the higher,
    # but sharper, threshold).
    d_ratio = pick(10.0, 0.45)["delay"] / pick(10.0, 0.7)["delay"]
    print(f"\n10 K delay penalty at 0.45 V: {100 * (d_ratio - 1):+.1f}%")
    assert d_ratio < 6.0
