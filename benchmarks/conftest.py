"""Shared benchmark configuration.

Set ``REPRO_FULL=1`` to run the figure benches on the complete EPFL
suite at the default widths (minutes); the default configuration uses
a representative subset so that ``pytest benchmarks/`` completes
quickly while still exercising every experiment end-to-end.
"""

import os

import pytest

FULL = os.environ.get("REPRO_FULL", "0") == "1"

#: Circuits used by the synthesis figures when not in FULL mode.
FAST_CIRCUITS = ["ctrl", "dec", "int2float", "priority", "router", "cavlc", "i2c"]


@pytest.fixture(scope="session")
def full_mode() -> bool:
    return FULL
