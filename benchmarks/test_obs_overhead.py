"""Tracer overhead guard: disabled tracing must stay near-free.

The ``repro.obs`` contract is one ``ContextVar.get`` + one branch per
call site when no tracer is installed.  These checks keep that honest:

* a microbenchmark bounds the absolute per-call cost of the disabled
  primitives;
* a budget check multiplies the number of instrumentation events a
  real synthesis run emits by the measured per-call cost and asserts
  the product is under 5% of the run's wall time (the acceptance bound
  for shipping instrumentation in hot paths).

Both use generous absolute thresholds so they hold on slow shared CI
runners while still catching an accidentally-expensive fast path
(e.g. formatting a span name or building attrs eagerly).
"""

import time

from repro import obs
from repro.benchgen import build_circuit
from repro.charlib import default_library
from repro.core import CryoSynthesisFlow


def _disabled_cost_per_call(calls: int = 100_000) -> float:
    """Measured seconds per disabled span+count pair."""
    assert obs.current_tracer() is None
    start = time.perf_counter()
    for _ in range(calls):
        with obs.span("bench.noop", x=1):
            pass
        obs.count("bench.noop", 1)
    return (time.perf_counter() - start) / calls


class _CallCountingTracer(obs.Tracer):
    """Tracer that counts primitive invocations (not counter sums)."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def count(self, name, n=1):
        self.calls += 1
        super().count(name, n)

    def span(self, name, **attrs):
        self.calls += 2  # enter + exit
        return super().span(name, **attrs)


def test_disabled_primitives_are_cheap():
    per_call = _disabled_cost_per_call()
    # One span + one count; even modest hardware does this in well
    # under a microsecond — 10 us flags a broken fast path, not jitter.
    assert per_call < 1e-5, f"disabled obs call cost {per_call * 1e6:.2f} us"


def test_disabled_tracer_overhead_under_5_percent():
    aig = build_circuit("ctrl", "small")
    library = default_library(10.0)  # characterize outside the timed region

    def run_flow():
        flow = CryoSynthesisFlow(library, "p_a_d")
        result = flow.run(aig)
        flow.signoff_power(result, clock_period=result.critical_delay * 1.1)

    # Timed run with tracing disabled (the production default).
    run_flow()  # warm caches
    start = time.perf_counter()
    run_flow()
    flow_time = time.perf_counter() - start

    # Count how many instrumentation events the same run emits.
    with _CallCountingTracer() as tracer:
        run_flow()
    events = tracer.calls

    per_call = _disabled_cost_per_call()
    projected = events * per_call
    assert projected < 0.05 * flow_time, (
        f"{events} obs events x {per_call * 1e9:.0f} ns = {projected * 1e3:.2f} ms "
        f"exceeds 5% of the {flow_time * 1e3:.1f} ms flow"
    )
