"""Throughput microbenchmarks of the core computational kernels.

These are conventional pytest-benchmark measurements (multiple rounds)
of the kernels everything else is built on: AIG simulation, cut
enumeration, SAT solving, cell characterization, and SPICE transients.
They track performance regressions rather than reproduce a figure.
"""

import random

import pytest

from repro.benchgen import build_circuit
from repro.charlib import AnalyticCharacterizer
from repro.device import CryoFinFET, default_nfet_5nm, default_pfet_5nm
from repro.pdk import cryo5_technology
from repro.pdk.catalog import make_aoi
from repro.sat import Solver
from repro.spice import Circuit, DC, Simulator, ramp
from repro.synth import enumerate_cuts, rewrite


@pytest.fixture(scope="module")
def adder_aig():
    return build_circuit("adder", "small")


def test_perf_aig_simulation(benchmark, adder_aig):
    rng = random.Random(0)
    words = [rng.getrandbits(1024) for _ in adder_aig.pis]
    result = benchmark(lambda: adder_aig.simulate(words, width=1024))
    assert len(result) == adder_aig.num_pos


def test_perf_cut_enumeration(benchmark, adder_aig):
    cuts = benchmark(lambda: enumerate_cuts(adder_aig, k=4, max_cuts=8))
    assert all(cuts[n] for n in adder_aig.and_nodes())


def test_perf_rewrite_pass(benchmark, adder_aig):
    result = benchmark.pedantic(lambda: rewrite(adder_aig), rounds=3, iterations=1)
    assert result.num_pos == adder_aig.num_pos


def test_perf_sat_php(benchmark):
    def php_solve():
        pigeons, holes = 6, 5
        solver = Solver()
        var = lambda p, h: p * holes + h + 1
        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        return solver.solve()

    assert benchmark(php_solve) is False


def test_perf_cell_characterization(benchmark):
    tech = cryo5_technology()
    characterizer = AnalyticCharacterizer(tech, 10.0)
    cell = make_aoi("221", 2)
    result = benchmark(lambda: characterizer.characterize_cell(cell))
    assert result.arcs


def test_perf_spice_inverter_transient(benchmark):
    tech = cryo5_technology()

    def run():
        circuit = Circuit("inv")
        circuit.add_vsource("vdd", "vdd", "0", DC(tech.vdd))
        circuit.add_vsource("vin", "a", "0", ramp(2e-11, 1e-11, 0.0, tech.vdd))
        circuit.add_finfet("mp", "y", "a", "vdd", CryoFinFET(default_pfet_5nm(nfin=3)))
        circuit.add_finfet("mn", "y", "a", "0", CryoFinFET(default_nfet_5nm(nfin=2)))
        circuit.add_capacitor("cl", "y", "0", 2e-15)
        return Simulator(circuit, 10.0).transient(t_stop=2e-10, dt=2e-12)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.voltage("y")[-1] < 0.05


def test_perf_spice_inverter_transient_scalar(benchmark):
    # Reference-path counterpart of the default (vector) measurement
    # above; the trajectory runner (kernels.py) tracks the ratio.
    from repro.spice import SimulatorSettings

    tech = cryo5_technology()

    def run():
        circuit = Circuit("inv")
        circuit.add_vsource("vdd", "vdd", "0", DC(tech.vdd))
        circuit.add_vsource("vin", "a", "0", ramp(2e-11, 1e-11, 0.0, tech.vdd))
        circuit.add_finfet("mp", "y", "a", "vdd", CryoFinFET(default_pfet_5nm(nfin=3)))
        circuit.add_finfet("mn", "y", "a", "0", CryoFinFET(default_nfet_5nm(nfin=2)))
        circuit.add_capacitor("cl", "y", "0", 2e-15)
        settings = SimulatorSettings(kernel="scalar")
        return Simulator(circuit, 10.0, settings=settings).transient(2e-10, 2e-12)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.voltage("y")[-1] < 0.05
