"""Ablation: switching-activity estimator inside the mapper's power cost.

ABC "simulates the switching activity of each node ... assuming a
certain activation rate for each primary input".  Two estimators
exist: random-vector simulation (reference) and probabilistic
propagation (independence assumption).  This ablation maps with both
under the power-first policy and compares the signed-off power; it
also sweeps the PI activation rate.
"""

import numpy as np

from repro.benchgen import build_suite
from repro.charlib import default_library
from repro.mapping import TechLibraryView, TechnologyMapper, p_a_d
from repro.sta import PowerAnalyzer, critical_delay
from repro.synth import compress2rs

CIRCUITS = ["ctrl", "dec", "priority", "int2float"]


def _run():
    library = default_library(10.0)
    view = TechLibraryView(library)
    suite = {n: compress2rs(a) for n, a in build_suite("small", names=CIRCUITS).items()}

    results: dict[str, float] = {}
    for source in ("simulation", "probabilistic"):
        totals = []
        for name, aig in suite.items():
            mapper = TechnologyMapper(view, p_a_d(), activity_source=source)
            net = mapper.map(aig)
            clock = critical_delay(net, library) * 1.5
            totals.append(PowerAnalyzer(net, library, vectors=256).analyze(clock).total)
        results[source] = float(np.mean(totals))

    # PI activation-rate sweep with the probabilistic estimator.
    rate_rows = []
    aig = suite["dec"]
    for rate in (0.1, 0.3, 0.5):
        mapper = TechnologyMapper(
            view, p_a_d(), activity_source="probabilistic", pi_probability=rate
        )
        net = mapper.map(aig)
        clock = critical_delay(net, library) * 1.5
        power = PowerAnalyzer(net, library, vectors=256, pi_probability=rate).analyze(clock)
        rate_rows.append((rate, power.total))
    return results, rate_rows


def test_ablation_activity_model(benchmark):
    results, rate_rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nAblation: activity estimator in the power-first mapper")
    for source, power in results.items():
        print(f"  {source:>14}: avg power {power * 1e6:8.3f} uW")
    ratio = results["probabilistic"] / results["simulation"]
    print(f"  probabilistic / simulation ratio: {ratio:.4f}")
    # Both estimators drive the mapper to comparable results (the
    # estimators agree on the independence-friendly EPFL control logic).
    assert 0.8 < ratio < 1.25

    print("\nPI activation-rate sweep (dec):")
    for rate, power in rate_rows:
        print(f"  rate {rate:.1f}: {power * 1e6:8.3f} uW")
    # Lower input activity -> lower measured power (monotone).
    powers = [p for _, p in rate_rows]
    assert powers[0] < powers[-1]
