"""Figure 1 (b, c): cryogenic compact model vs measurement.

Regenerates the paper's validation: I_ds-V_gs sweeps of n- and
p-FinFETs at |V_ds| = 50 mV and 750 mV from 300 K down to 10 K,
calibration of the cryogenic-aware BSIM-CMG surrogate, and the
model-vs-measurement residual table.  The paper's claim is "excellent
agreement" across the whole range — asserted here as sub-0.2-decade
RMS residuals for every condition.
"""

from repro.core import figure1_model_validation

TEMPERATURES = (300.0, 200.0, 77.0, 10.0)


def _run():
    return figure1_model_validation(temperatures=TEMPERATURES)


def test_fig1_model_validation(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nFig. 1 reproduction: model (lines) vs measurement (dots)")
    print(f"{'device':>7} {'|Vds| [V]':>10} {'T [K]':>7} {'RMS log-I error':>16}")
    for row in sorted(rows, key=lambda r: (r.polarity, abs(r.vds), r.temperature)):
        print(
            f"{row.polarity + '-FinFET':>7} {abs(row.vds):10.2f} "
            f"{row.temperature:7.0f} {row.rms_log_error:16.4f}"
        )

    # Shape assertions: every condition, both polarities, both biases,
    # the full temperature ladder; residuals at the "excellent
    # agreement" level.
    assert len(rows) == 2 * 2 * len(TEMPERATURES)
    assert {row.polarity for row in rows} == {"n", "p"}
    assert {abs(row.vds) for row in rows} == {0.05, 0.75}
    for row in rows:
        assert row.rms_log_error < 0.2, f"poor fit at {row}"
    mean_rms = sum(row.rms_log_error for row in rows) / len(rows)
    assert mean_rms < 0.1
    print(f"mean RMS residual: {mean_rms:.4f} decades (paper: excellent agreement)")
