"""STA performance-trajectory runner.

Times the static-timing engines on the largest benchgen circuits at
the default preset — one full-analysis section (legacy per-gate loop
vs. the levelized array graph) and one incremental section (repeated
sizing-style cost queries: legacy full re-analysis vs.
``set_cell``/``update``/``max_delay`` on a compiled
:class:`~repro.sta.graph.TimingGraph`) — and writes one
machine-readable ``BENCH_sta.json``.  CI's bench-smoke job runs this
once per change and archives the JSON next to ``BENCH_kernels.json``,
so the numbers form a trajectory across commits.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/sta.py [-o BENCH_sta.json]
        [--repeats N] [--assert-speedup X] [--assert-graph-default]

Each scalar/vector pair is best-of-``repeats`` wall time (``scalar``
is the legacy engine, ``vector`` the graph engine, matching the
kernels-report convention so ``benchmarks/regression.py`` tracks both
without special cases).  Observability counters recorded during the
run (``sta.*``) are embedded under ``"counters"`` so the artifact also
proves *which* timing path executed — ``--assert-speedup X`` fails the
run if the incremental-query section comes in under ``X``×, and
``--assert-graph-default`` fails it if the environment has overridden
the graph engine default.

See ``docs/PERFORMANCE.md`` for the schema and how to add a section.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from dataclasses import replace


def best_of(fn, repeats: int) -> float:
    """Best wall-time of ``repeats`` runs [s] (min filters scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ---------------------------------------------------------------------------
# Shared fixtures.  The mapped circuits are expensive to build (seconds
# each), so they are constructed once and shared across sections.

#: Largest default-preset benchgen circuits by mapped gate count.
CIRCUITS = ("sin", "hyp")

#: Sizing-style cost queries per measurement.
QUERIES = 40

_fixtures: dict | None = None


def fixtures() -> dict:
    global _fixtures
    if _fixtures is None:
        from repro.benchgen import build_circuit
        from repro.charlib import default_library
        from repro.mapping import map_to_gates

        library = default_library(10.0)
        netlists = {}
        for name in CIRCUITS:
            aig = build_circuit(name, "default")
            netlists[name] = map_to_gates(aig, library)
        _fixtures = {"library": library, "netlists": netlists}
    return _fixtures


def _swap_schedule(netlist, library, count: int, seed: int = 7):
    """Deterministic within-family cell swaps (same footprint and pin
    order, so both engines take their cheap path — exactly the edits
    the gate sizer issues)."""
    families: dict[tuple, list[str]] = {}
    for name, cell in library.cells.items():
        if cell.is_sequential:
            continue
        families.setdefault(
            (cell.footprint, tuple(cell.input_pins)), []
        ).append(name)
    rng = random.Random(seed)
    schedule = []
    attempts = 0
    while len(schedule) < count and attempts < 100 * count:
        attempts += 1
        gi = rng.randrange(netlist.num_gates)
        cell = library[netlist.gates[gi].cell]
        alternatives = [
            c
            for c in families[(cell.footprint, tuple(cell.input_pins))]
            if c != cell.name
        ]
        if alternatives:
            schedule.append((gi, rng.choice(alternatives)))
    return schedule


# ---------------------------------------------------------------------------
# Sections.  Each returns a JSON-ready dict.


def bench_full(circuit: str, repeats: int) -> dict:
    """Full-netlist analysis: legacy loop vs. compiled graph."""
    from repro.sta.graph import TimingGraph
    from repro.sta.timing import StaticTimingAnalyzer

    fix = fixtures()
    netlist, library = fix["netlists"][circuit], fix["library"]

    # The graph side finishes in ~10 ms, where allocator/GC spikes are
    # visible; extra repeats keep best-of stable.
    repeats = max(repeats, 8)
    legacy = StaticTimingAnalyzer(netlist, library, engine="legacy")
    scalar = best_of(lambda: legacy.analyze(), repeats)

    t0 = time.perf_counter()
    graph = TimingGraph(netlist, library)
    build = time.perf_counter() - t0
    vector = best_of(lambda: graph.analyze(), repeats)
    return {
        "scalar_seconds": scalar,
        "vector_seconds": vector,
        "speedup": scalar / vector,
        "build_seconds": build,
        "detail": f"{circuit}/default ({netlist.num_gates} gates), "
        "full analysis, legacy vs graph (graph compile reported "
        "separately as build_seconds)",
    }


def bench_incremental(circuit: str, repeats: int) -> dict:
    """Repeated sizing-style cost queries: one cell swap, then the new
    worst delay.  Legacy pays a full re-analysis per query; the graph
    engine re-times only the affected cone."""
    from repro.sta.graph import TimingGraph
    from repro.sta.timing import StaticTimingAnalyzer

    fix = fixtures()
    netlist, library = fix["netlists"][circuit], fix["library"]
    schedule = _swap_schedule(netlist, library, QUERIES)

    # Legacy: mutate the netlist in place (the sizer's edit pattern)
    # and pay a full analysis per query.  The analyzer is reused so its
    # per-analyzer caches (satellite of the same change) are warm.
    legacy = StaticTimingAnalyzer(netlist, library, engine="legacy")
    originals = list(netlist.gates)

    def legacy_queries():
        for gi, cell in schedule:
            netlist.gates[gi] = replace(netlist.gates[gi], cell=cell)
            legacy.analyze().max_delay
        netlist.gates[:] = originals

    scalar = best_of(legacy_queries, repeats)

    graph = TimingGraph(netlist, library)
    graph.analyze()
    restore = [(gi, netlist.gates[gi].cell) for gi, _ in schedule]

    def graph_queries():
        for gi, cell in schedule:
            graph.set_cell(gi, cell)
            graph.update()
            graph.max_delay()
        for gi, cell in restore:
            graph.set_cell(gi, cell)
        graph.update()

    vector = best_of(graph_queries, repeats)
    return {
        "scalar_seconds": scalar,
        "vector_seconds": vector,
        "speedup": scalar / vector,
        "detail": f"{circuit}/default ({netlist.num_gates} gates), "
        f"{QUERIES} within-family swap + worst-delay queries, legacy "
        "full re-analysis vs incremental retime",
    }


SECTIONS = {
    "sta_full": lambda repeats: bench_full(CIRCUITS[0], repeats),
    "sta_incremental": lambda repeats: bench_incremental(CIRCUITS[0], repeats),
    "sta_incremental_hyp": lambda repeats: bench_incremental(
        CIRCUITS[1], repeats
    ),
}


def run_benchmarks(repeats: int) -> dict:
    from repro import obs
    from repro.sta.timing import default_engine

    results = {}
    with obs.Tracer() as tracer:
        for name, fn in SECTIONS.items():
            print(f"[bench] {name} ...", flush=True)
            results[name] = fn(repeats)
    report = {
        "schema": "repro-bench-sta/1",
        "repeats": repeats,
        "default_engine": default_engine(),
        "results": results,
        "counters": {
            k: v for k, v in sorted(tracer.counters.items())
            if k.startswith("sta.")
        },
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_sta.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--assert-speedup",
        type=float,
        metavar="X",
        help="fail unless every incremental section reaches X x",
    )
    parser.add_argument(
        "--assert-graph-default",
        action="store_true",
        help="fail unless the graph engine is the configured default",
    )
    args = parser.parse_args(argv)

    report = run_benchmarks(args.repeats)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    for name, entry in report["results"].items():
        print(
            f"[bench] {name}: legacy {entry['scalar_seconds'] * 1e3:.1f} ms, "
            f"graph {entry['vector_seconds'] * 1e3:.1f} ms "
            f"({entry['speedup']:.2f}x)"
        )
    print(f"[bench] wrote {args.output}")

    status = 0
    if args.assert_graph_default and report["default_engine"] != "graph":
        print("[bench] FAIL: default STA engine is not 'graph'", file=sys.stderr)
        status = 1
    if args.assert_speedup is not None:
        for name, entry in report["results"].items():
            if not name.startswith("sta_incremental"):
                continue
            if entry["speedup"] < args.assert_speedup:
                print(
                    f"[bench] FAIL: {name} speedup {entry['speedup']:.2f}x "
                    f"< required {args.assert_speedup:g}x",
                    file=sys.stderr,
                )
                status = 1
    if status == 0 and (args.assert_speedup or args.assert_graph_default):
        print("[bench] assertions passed")
    if report["counters"].get("sta.incremental_hits", 0) <= 0:
        print(
            "[bench] FAIL: incremental retime path never executed "
            "(sta.incremental_hits counter is 0)",
            file=sys.stderr,
        )
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
