"""Chaos harness for the remote artifact-cache tier.

Two phases, one machine-readable ``BENCH_cache.json``:

* **in-process load with a mid-run ``kill -9``** — several "hosts"
  (independent :class:`repro.core.artifacts.ArtifactCache` instances
  with their own disk tiers) hammer one real ``repro cache-serve``
  subprocess with deterministic ``cache.remote.timeout`` /
  ``cache.remote.corrupt`` faults injected; halfway through, the
  server is SIGKILLed.  The contract asserted: **zero lost results**
  (every lookup returned a value) and **zero non-identical results**
  (every value is bit-identical to the expected computation), with the
  breaker visibly tripping into degraded mode, stashing write-behind
  uploads, and — once the server is restarted — recovering and
  flushing them;

* **flow byte-identity** — a baseline ``repro evaluate`` with no
  remote tier, then two concurrent ``repro evaluate --cache-remote``
  subprocesses whose cache server is SIGKILLed mid-run.  Both must
  exit 0 with output JSON byte-identical to the baseline, and their
  run-ledger records must carry ``cache.remote.*`` counters (the
  chaos-visibility acceptance criterion of ISSUE 9).

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/cache_remote.py [-o BENCH_cache.json]
        [--short] [--hosts N] [--keys N] [--rounds N] [--seed N]
        [--timeout-rate P] [--corrupt-rate P] [--skip-subprocess]

``--short`` is the CI ``cache-soak`` configuration: fewer keys and
hosts, same assertions.  Exit status is non-zero when any assertion
fails.  See ``docs/ROBUSTNESS.md`` ("Remote cache tier").
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

SCHEMA = "repro-bench-cache/1"


# ---------------------------------------------------------------------------
# cache-serve subprocess management


def _serve(tmp: Path, env, port: int = 0):
    port_file = tmp / "port.txt"
    port_file.unlink(missing_ok=True)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "cache-serve",
            "--port", str(port), "--port-file", str(port_file),
            "--dir", str(tmp / "blobs"),
        ],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"cache-serve exited early: {proc.stderr.read()}")
        if port_file.exists() and port_file.read_text().strip():
            return proc, int(port_file.read_text())
        time.sleep(0.05)
    raise RuntimeError("cache-serve never wrote its port file")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_CACHE_REMOTE", None)
    env.pop("REPRO_FAULTS", None)
    return env


# ---------------------------------------------------------------------------
# Phase 1: multi-host load with injected faults and a mid-run kill -9.


def _expected_value(key: str) -> dict:
    """Deterministic artifact for a key (bit-stable across hosts)."""
    rng = random.Random(key)
    return {
        "key": key,
        "table": [round(rng.uniform(0.0, 5.0), 9) for _ in range(32)],
    }


def run_load_phase(args) -> dict:
    from repro import obs
    from repro.cache.remote import RemoteCacheClient
    from repro.core import ArtifactCache
    from repro.resilience.faults import injecting, parse_plan

    tmp = Path(tempfile.mkdtemp(prefix="repro-cache-load-"))
    env = _env()
    proc, port = _serve(tmp, env)
    url = f"127.0.0.1:{port}"

    keys = [f"bench:{i:04x}" for i in range(args.keys)]
    expected = {key: pickle.dumps(_expected_value(key)) for key in keys}

    clients = [
        RemoteCacheClient(
            url,
            connect_timeout_s=0.5,
            read_timeout_s=2.0,
            max_retries=1,
            backoff_base_s=0.005,
            backoff_cap_s=0.02,
            breaker_threshold=3,
            breaker_cooldown_s=0.3,
            rng=random.Random(args.seed + i),
        )
        for i in range(args.hosts)
    ]
    mismatches: list[str] = []
    crashes: list[str] = []
    kill_gate = threading.Barrier(args.hosts + 1)
    lock = threading.Lock()
    ops = 0
    remote_hits = 0

    def host_loop(host_idx: int) -> None:
        nonlocal ops, remote_hits
        # Every host walks the full key set, each starting at its own
        # offset: hosts race on some keys and inherit others through
        # the remote tier (the cross-host sharing being measured).
        shard = keys[host_idx::args.hosts] + [
            k for i, k in enumerate(keys) if i % args.hosts != host_idx
        ]
        for phase in ("before", "after"):
            # A fresh cache per half: the post-kill half starts with
            # cold local tiers, so every lookup exercises the dead
            # remote (miss -> compute -> failed write-through -> stash)
            # instead of short-circuiting in the memory tier.
            cache = ArtifactCache(
                cache_dir=tmp / f"host{host_idx}-{phase}",
                remote=clients[host_idx],
            )
            for round_no in range(args.rounds):
                for key in shard:
                    value = cache.get_or_compute(
                        key, lambda k=key: _expected_value(k)
                    )
                    with lock:
                        ops += 1
                    if pickle.dumps(value) != expected[key]:
                        with lock:
                            mismatches.append(
                                f"host{host_idx} {phase} round{round_no} {key}"
                            )
            with lock:
                remote_hits += cache.remote_hits
            if phase == "before":
                kill_gate.wait()  # everyone pauses while the server dies
                kill_gate.wait()

    plan = parse_plan(
        f"seed={args.seed};cache.remote.timeout:{args.timeout_rate};"
        f"cache.remote.corrupt:{args.corrupt_rate}"
    )
    started = time.perf_counter()
    with obs.Tracer() as tracer, injecting(plan):
        import contextvars

        threads = [
            # Each thread runs inside a copy of this context so its
            # obs counters land in the tracer (threads do not inherit
            # contextvars on their own).
            threading.Thread(
                target=contextvars.copy_context().run,
                args=(host_loop, i),
                daemon=True,
            )
            for i in range(args.hosts)
        ]
        for thread in threads:
            thread.start()
        kill_gate.wait()  # all hosts finished the healthy half
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        kill_gate.wait()  # release hosts against the dead server
        for thread in threads:
            thread.join(timeout=600)
            if thread.is_alive():
                crashes.append("host thread wedged (never-fail violated)")
        wall_s = time.perf_counter() - started

        # -- recovery: restart on the same port, wait out the cooldown,
        #    and let one operation per host double as the probe.
        proc, port2 = _serve(tmp, env, port=port)
        time.sleep(0.4)  # > breaker_cooldown_s
        recovered = 0
        for client in clients:
            for _ in range(3):  # probe + margin for a slow first accept
                if client.probe():
                    break
                time.sleep(0.2)
            if not client.degraded:
                recovered += 1
        proc.send_signal(signal.SIGINT)
        proc.wait(timeout=30)

    counters = dict(tracer.counters)
    errors = []
    if mismatches:
        errors.append(
            f"non-identical results: {len(mismatches)} lookups diverged "
            f"(first: {mismatches[0]})"
        )
    if crashes:
        errors.extend(crashes)
    want_ops = args.hosts * 2 * args.rounds * len(keys)
    if ops != want_ops:
        errors.append(f"lost results: {ops} of {want_ops} lookups returned")
    if counters.get("cache.remote.breaker.trip", 0) < 1:
        errors.append("breaker never tripped despite kill -9")
    if counters.get("cache.remote.degraded_skip", 0) < 1:
        errors.append("degraded mode never skipped a network round trip")
    if recovered < args.hosts:
        errors.append(f"only {recovered}/{args.hosts} hosts recovered")
    if counters.get("cache.remote.recovered", 0) < args.hosts:
        errors.append("recovery counter below host count")
    pending = sum(c.stats()["pending_writes"] for c in clients)
    stashed = counters.get("cache.remote.write_behind", 0)
    if stashed >= 1 and counters.get("cache.remote.writeback", 0) < 1:
        errors.append("write-behind uploads were stashed but never flushed")

    return {
        "hosts": args.hosts,
        "keys": len(keys),
        "rounds": args.rounds,
        "lookups": ops,
        "mismatches": len(mismatches),
        "remote_hits": remote_hits,
        "breaker_trips": counters.get("cache.remote.breaker.trip", 0),
        "degraded_skips": counters.get("cache.remote.degraded_skip", 0),
        "injected_timeouts": counters.get("faults.injected.cache.remote.timeout", 0),
        "injected_corruptions": counters.get(
            "faults.injected.cache.remote.corrupt", 0
        ),
        "corrupt_detected": counters.get("cache.remote.corrupt", 0),
        "refetches": counters.get("cache.remote.refetch", 0),
        "write_behind": stashed,
        "writebacks": counters.get("cache.remote.writeback", 0),
        "pending_after_recovery": pending,
        "hosts_recovered": recovered,
        "wall_s": wall_s,
        "lookups_per_s": ops / max(1e-9, wall_s),
        "counters": {
            name: n
            for name, n in sorted(counters.items())
            if name.startswith(("cache.", "faults."))
        },
        "errors": errors,
    }


# ---------------------------------------------------------------------------
# Phase 2: flow byte-identity through subprocesses with a dying server.


def _evaluate(out: Path, extra, env, vectors: int):
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "evaluate", "ctrl",
            "--preset", "small", "--vectors", str(vectors),
            "--json", str(out),
        ] + extra,
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )


def run_flow_phase(args) -> dict:
    errors = []
    env = _env()
    vectors = 64 if args.short else 128
    tmp = Path(tempfile.mkdtemp(prefix="repro-cache-flow-"))

    # -- baseline: no remote tier at all.
    baseline = tmp / "baseline.json"
    started = time.perf_counter()
    proc = _evaluate(
        baseline,
        ["--cache-dir", str(tmp / "cache-base"), "--no-ledger"],
        env, vectors,
    )
    if proc.wait(timeout=600) != 0:
        errors.append(f"baseline evaluate failed: {proc.stderr.read()}")
    baseline_wall = time.perf_counter() - started

    # -- two hosts share a cache server that dies mid-run.
    server, port = _serve(tmp, env)
    url = f"127.0.0.1:{port}"
    outs = [tmp / "host1.json", tmp / "host2.json"]
    ledgers = [tmp / "ledger1.jsonl", tmp / "ledger2.jsonl"]
    procs = [
        _evaluate(
            out,
            [
                "--cache-dir", str(tmp / f"cache-{i}"),
                "--cache-remote", url,
                "--ledger", str(ledger),
            ],
            env, vectors,
        )
        for i, (out, ledger) in enumerate(zip(outs, ledgers))
    ]
    # SIGKILL the server once the runs are warmed up; they must finish
    # on local tiers alone.
    time.sleep(max(0.3, 0.4 * baseline_wall))
    server.send_signal(signal.SIGKILL)
    server.wait(timeout=30)
    exits = [proc.wait(timeout=600) for proc in procs]
    for i, code in enumerate(exits):
        if code != 0:
            errors.append(
                f"host{i + 1} evaluate exited {code} after server kill: "
                f"{procs[i].stderr.read()}"
            )

    identical = all(
        out.exists() and out.read_bytes() == baseline.read_bytes()
        for out in outs
    )
    if baseline.exists() and not identical:
        errors.append(
            "flow output with a dying cache server is not byte-identical "
            "to the no-remote baseline"
        )

    # -- acceptance: cache.remote.* counters land in the run ledger.
    ledger_counters = {}
    for ledger in ledgers:
        if not ledger.exists():
            continue
        for line in ledger.read_text().splitlines():
            record = json.loads(line)
            for name, n in (record.get("counters") or {}).items():
                if name.startswith("cache.remote."):
                    ledger_counters[name] = ledger_counters.get(name, 0) + n
    if not ledger_counters:
        errors.append("no cache.remote.* counters reached the run ledger")

    return {
        "vectors": vectors,
        "baseline_wall_s": baseline_wall,
        "evaluate_exits": exits,
        "byte_identical": identical,
        "ledger_cache_remote_counters": dict(sorted(ledger_counters.items())),
        "errors": errors,
    }


# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_cache.json")
    parser.add_argument("--short", action="store_true",
                        help="CI cache-soak configuration (smaller load)")
    parser.add_argument("--hosts", type=int, default=None,
                        help="concurrent cache hosts (default: 4, or 2 --short)")
    parser.add_argument("--keys", type=int, default=None,
                        help="distinct artifacts (default: 96, or 32 --short)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="lookups of every key per half, per host")
    parser.add_argument("--timeout-rate", type=float, default=0.05,
                        help="cache.remote.timeout fault probability")
    parser.add_argument("--corrupt-rate", type=float, default=0.03,
                        help="cache.remote.corrupt fault probability")
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--skip-subprocess", action="store_true",
                        help="skip the flow byte-identity subprocess phase")
    args = parser.parse_args(argv)
    if args.hosts is None:
        args.hosts = 2 if args.short else 4
    if args.keys is None:
        args.keys = 32 if args.short else 96

    print(
        f"cache load: {args.hosts} hosts x {args.keys} keys x "
        f"{args.rounds} rounds/half, timeout rate {args.timeout_rate}, "
        f"corrupt rate {args.corrupt_rate}",
        flush=True,
    )
    load = run_load_phase(args)
    print(
        f"  {load['lookups']} lookups ({load['remote_hits']} remote hits), "
        f"{load['mismatches']} mismatches, breaker trips "
        f"{load['breaker_trips']}, degraded skips {load['degraded_skips']}, "
        f"writebacks {load['writebacks']}/{load['write_behind']}, "
        f"{load['hosts_recovered']}/{load['hosts']} hosts recovered",
        flush=True,
    )
    flow = {"skipped": True, "errors": []}
    if not args.skip_subprocess:
        flow = run_flow_phase(args)
        print(
            f"  flow: exits {flow['evaluate_exits']}, byte-identical "
            f"{flow['byte_identical']}, ledger cache.remote counters "
            f"{len(flow['ledger_cache_remote_counters'])}",
            flush=True,
        )

    report = {
        "schema": SCHEMA,
        "short": args.short,
        "config": {
            "hosts": args.hosts,
            "keys": args.keys,
            "rounds": args.rounds,
            "timeout_rate": args.timeout_rate,
            "corrupt_rate": args.corrupt_rate,
            "seed": args.seed,
        },
        "load": load,
        "flow": flow,
    }
    Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")

    failures = load["errors"] + flow["errors"]
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            "OK: zero lost, zero non-identical, breaker tripped and "
            "recovered, write-behind flushed, counters in the ledger"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
