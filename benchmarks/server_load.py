"""Load/chaos harness for the characterization service.

Two phases, one machine-readable ``BENCH_server.json``:

* **in-process load** — hundreds of concurrent ``probe`` /
  ``characterize`` / ``evaluate`` submissions from competing tenants
  against a deliberately small queue, with deterministic
  ``server.worker_crash`` faults injected, asserting the service's
  core contract: **zero lost results** (every admitted job reaches
  exactly one terminal state), **zero duplicated results** (all done
  jobs sharing a key produced byte-identical canonical JSON), and
  **fully accounted shedding** (locally observed admission rejections
  equal the ``server.shed.*`` counters, and the final shed rate stays
  under a bound once polite retries are exhausted);

* **subprocess drain** — a real ``repro serve`` process is SIGTERMed
  mid-burst and must exit ``0`` after finishing its queue (clean
  drain), then a second run with a long job and a tiny
  ``--drain-timeout`` must exit ``3`` leaving a journal that
  ``--resume --exit-when-idle`` completes with exit ``0``.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/server_load.py [-o BENCH_server.json]
        [--short] [--jobs N] [--workers N] [--capacity N]
        [--crash-rate P] [--seed N] [--skip-subprocess]

``--short`` is the CI ``server-soak`` configuration: fewer jobs, same
assertions.  The default (full) configuration must complete at least
500 jobs.  Exit status is non-zero when any assertion fails.

See ``docs/ROBUSTNESS.md`` ("Service robustness") for the design.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

SCHEMA = "repro-bench-server/1"


def _canonical_digest(result) -> str:
    data = (json.dumps(result, indent=2, sort_keys=True) + "\n").encode()
    return hashlib.sha256(data).hexdigest()


# ---------------------------------------------------------------------------
# Phase 1: in-process load with injected worker crashes.


def _schedule(total: int, short: bool):
    """Deterministic job mix: mostly cheap probes for queue pressure,
    a handful of distinct characterize corners replayed many times (the
    coalescing/caching path), and — in full mode — a small evaluate."""
    from repro.server import JobSpec

    corners = [(4.0, None), (10.0, None), (77.0, None), (10.0, 0.6)]
    specs = []
    for i in range(total):
        tenant = f"t{i % 4}"
        slot = i % 10
        if slot < 7:  # 70%: probes with a spread of tiny sleeps
            specs.append(
                JobSpec(
                    kind="probe",
                    params={"echo": f"p{i % 13}", "sleep_s": (i % 5) * 0.004},
                    tenant=tenant,
                    priority=i % 3,
                )
            )
        elif slot < 9 or short:  # characterize: few keys, many replays
            temperature, vdd = corners[i % len(corners)]
            params = {"temperature": temperature}
            if vdd is not None:
                params["vdd"] = vdd
            specs.append(
                JobSpec(kind="characterize", params=params, tenant=tenant)
            )
        else:  # full mode only: one small evaluate key, replayed
            specs.append(
                JobSpec(
                    kind="evaluate",
                    params={
                        "circuit": "ctrl",
                        "preset": "small",
                        "scenarios": ["baseline"],
                        "vectors": 64,
                    },
                    tenant=tenant,
                )
            )
    return specs


def run_load_phase(args) -> dict:
    from repro.resilience.errors import AdmissionError
    from repro.resilience.faults import injecting, parse_plan
    from repro.server import CharacterizationService, unfinished_specs
    from repro.resilience.journal import RunJournal

    total = args.jobs
    specs = _schedule(total, args.short)
    shed_events = 0
    shed_final = 0
    handles = []
    lock = threading.Lock()

    tmp = Path(tempfile.mkdtemp(prefix="repro-server-load-"))
    journal = RunJournal.create(tmp / "load.jnl", {"command": "serve"})
    service = CharacterizationService(
        capacity=args.capacity,
        workers=args.workers,
        quotas={"t0": args.capacity},  # one tenant runs quota-limited
        weights={"t1": 3},  # ... and one gets a bigger fair share
        max_attempts=4,
        breaker_threshold=5,
        breaker_cooldown_s=0.2,
        results_dir=tmp / "results",
        journal=journal,
    )

    def submitter(chunk):
        nonlocal shed_events, shed_final
        for spec in chunk:
            for _ in range(40):  # polite retry on shed
                try:
                    job = service.submit(spec)
                except AdmissionError as exc:
                    with lock:
                        shed_events += 1
                    time.sleep(min(0.1, exc.retry_after_s or 0.02))
                else:
                    with lock:
                        handles.append(job)
                    break
            else:
                with lock:
                    shed_final += 1

    plan = parse_plan(
        f"seed={args.seed};server.worker_crash:{args.crash_rate};"
        f"server.queue_full:{args.full_rate}"
    )
    started = time.perf_counter()
    with injecting(plan):
        service.start()
        threads = [
            threading.Thread(target=submitter, args=(specs[i::8],))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        drained = service.drain(timeout=600.0)
        service.shutdown(timeout=1.0)
    wall_s = time.perf_counter() - started
    journal.close()

    # -- assertions ---------------------------------------------------------
    errors = []
    counters = service.metrics()["counters"]
    terminal = [job for job in handles if job.state in ("done", "failed")]
    done = [job for job in handles if job.state == "done"]
    if not drained:
        errors.append("service failed to drain within 600s")
    if len(terminal) != len(handles):
        errors.append(
            f"lost results: {len(handles) - len(terminal)} of "
            f"{len(handles)} admitted jobs never reached a terminal state"
        )
    digests: dict[str, set] = {}
    for job in done:
        digests.setdefault(job.key, set()).add(_canonical_digest(job.result))
    duplicated = {key: d for key, d in digests.items() if len(d) != 1}
    if duplicated:
        errors.append(f"duplicated results: divergent bytes for {sorted(duplicated)}")
    finished = counters.get("server.completed", 0) + counters.get("server.failed", 0)
    if finished != len(handles):
        errors.append(
            f"counter mismatch: completed+failed={finished}, admitted handles="
            f"{len(handles)}"
        )
    counted_shed = sum(
        n for name, n in counters.items() if name.startswith("server.shed.")
    )
    if counted_shed != shed_events:
        errors.append(
            f"unaccounted shedding: saw {shed_events} admission rejections, "
            f"server.shed.* counters say {counted_shed}"
        )
    shed_rate = shed_final / max(1, total)
    if shed_rate > args.max_shed_rate:
        errors.append(
            f"shed rate {shed_rate:.3f} exceeds the {args.max_shed_rate} bound"
        )
    floor = args.min_completed
    if len(done) < floor:
        errors.append(f"completed {len(done)} jobs; the floor is {floor}")
    pending = unfinished_specs(journal.records)
    if drained and pending:
        errors.append(f"journal still lists {len(pending)} unfinished job(s)")

    return {
        "jobs_submitted": total,
        "jobs_admitted": len(handles),
        "jobs_completed": len(done),
        "jobs_failed": len(terminal) - len(done),
        "jobs_shed_final": shed_final,
        "shed_events": shed_events,
        "shed_rate": shed_rate,
        "distinct_keys": len(digests),
        "worker_crashes": counters.get("server.worker_crash", 0),
        "retries": counters.get("server.retried", 0),
        "coalesced": counters.get("server.coalesced", 0),
        "cached": counters.get("server.cached", 0),
        "breaker_trips": counters.get("server.breaker.trip", 0),
        "wall_s": wall_s,
        "throughput_jobs_per_s": len(terminal) / max(1e-9, wall_s),
        "counters": dict(sorted(counters.items())),
        "drained": drained,
        "errors": errors,
    }


# ---------------------------------------------------------------------------
# Phase 2: subprocess SIGTERM drain + forced-timeout resume.


def _serve(extra, tmp: Path, env):
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0", "--port-file", str(tmp / "port.txt"),
        "--workers", "2", "--no-ledger",
        "--results-dir", str(tmp / "results"),
    ] + extra
    return subprocess.Popen(
        cmd, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True
    )


def _wait_port(tmp: Path, proc, timeout=30.0) -> int:
    deadline = time.monotonic() + timeout
    port_file = tmp / "port.txt"
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"serve exited early: {proc.stderr.read()}")
        if port_file.exists() and port_file.read_text().strip():
            return int(port_file.read_text())
        time.sleep(0.05)
    raise RuntimeError("serve never wrote its port file")


def _post_job(port: int, spec: dict) -> dict:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/jobs",
        data=json.dumps(spec).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    for _ in range(50):
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            if exc.code in (429, 503):
                time.sleep(0.05)
                continue
            raise
    raise RuntimeError("job never admitted")


def run_drain_phase(args) -> dict:
    errors = []
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_FAULTS"] = f"seed={args.seed};server.worker_crash:first=1"
    burst = 8 if args.short else 24

    # -- clean drain: SIGTERM mid-burst must exit 0 with all jobs done.
    tmp = Path(tempfile.mkdtemp(prefix="repro-server-drain-"))
    proc = _serve(["--journal", str(tmp / "serve.jnl")], tmp, env)
    port = _wait_port(tmp, proc)
    for i in range(burst):
        _post_job(port, {
            "kind": "probe",
            "params": {"echo": f"d{i}", "sleep_s": 0.05},
            "tenant": "drain",
        })
    proc.send_signal(signal.SIGTERM)
    clean_rc = proc.wait(timeout=60)
    clean_results = len(list((tmp / "results").glob("*.json")))
    if clean_rc != 0:
        errors.append(
            f"clean drain exited {clean_rc}, wanted 0: {proc.stderr.read()}"
        )

    # -- forced timeout: a long job + --drain-timeout 0.2 must exit 3,
    #    and --resume must finish the journaled job and exit 0.
    tmp2 = Path(tempfile.mkdtemp(prefix="repro-server-resume-"))
    proc = _serve(
        ["--journal", str(tmp2 / "serve.jnl"), "--drain-timeout", "0.2"],
        tmp2, env,
    )
    port = _wait_port(tmp2, proc)
    _post_job(port, {
        "kind": "probe", "params": {"echo": "slow", "sleep_s": 10}, "tenant": "t",
    })
    time.sleep(0.3)  # let a worker pick the job up
    proc.send_signal(signal.SIGTERM)
    timeout_rc = proc.wait(timeout=60)
    if timeout_rc != 3:
        errors.append(f"forced drain timeout exited {timeout_rc}, wanted 3")
    resume = subprocess.run(
        [
            sys.executable, "-m", "repro", "serve", "--no-http",
            "--resume", str(tmp2 / "serve.jnl"),
            "--results-dir", str(tmp2 / "results"),
            "--exit-when-idle", "--no-ledger", "--workers", "2",
        ],
        env={**env, "REPRO_FAULTS": ""},
        capture_output=True, text=True, timeout=120,
    )
    if resume.returncode != 0:
        errors.append(f"resume exited {resume.returncode}: {resume.stderr}")
    resumed_results = len(list((tmp2 / "results").glob("*.json")))
    if resumed_results < 1:
        errors.append("resume completed no journaled job")

    return {
        "burst": burst,
        "clean_drain_exit": clean_rc,
        "clean_drain_results": clean_results,
        "forced_timeout_exit": timeout_rc,
        "resume_exit": resume.returncode,
        "resume_results": resumed_results,
        "errors": errors,
    }


# ---------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_server.json")
    parser.add_argument("--short", action="store_true",
                        help="CI soak configuration (fewer jobs)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="total submissions (default: 600, or 160 --short)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--capacity", type=int, default=32)
    parser.add_argument("--crash-rate", type=float, default=0.04,
                        help="server.worker_crash fault probability")
    parser.add_argument("--full-rate", type=float, default=0.03,
                        help="server.queue_full fault probability (forces "
                             "saturation shedding even when workers keep up)")
    parser.add_argument("--seed", type=int, default=2023)
    parser.add_argument("--max-shed-rate", type=float, default=0.2,
                        help="bound on finally-shed submissions after retries")
    parser.add_argument("--min-completed", type=int, default=None,
                        help="completed-jobs floor (default: 500, or 100 --short)")
    parser.add_argument("--skip-subprocess", action="store_true",
                        help="skip the SIGTERM drain/resume subprocess phase")
    args = parser.parse_args(argv)
    if args.jobs is None:
        args.jobs = 160 if args.short else 600
    if args.min_completed is None:
        args.min_completed = 100 if args.short else 500

    print(
        f"server load: {args.jobs} jobs, {args.workers} workers, "
        f"capacity {args.capacity}, crash rate {args.crash_rate}",
        flush=True,
    )
    load = run_load_phase(args)
    print(
        f"  admitted {load['jobs_admitted']}, completed "
        f"{load['jobs_completed']}, failed {load['jobs_failed']}, "
        f"shed {load['jobs_shed_final']} (rate {load['shed_rate']:.3f}), "
        f"crashes {load['worker_crashes']}, coalesced {load['coalesced']}, "
        f"{load['throughput_jobs_per_s']:.0f} jobs/s",
        flush=True,
    )
    drain = {"skipped": True, "errors": []}
    if not args.skip_subprocess:
        drain = run_drain_phase(args)
        print(
            f"  drain: clean exit {drain['clean_drain_exit']}, forced "
            f"timeout exit {drain['forced_timeout_exit']}, resume exit "
            f"{drain['resume_exit']}",
            flush=True,
        )

    report = {
        "schema": SCHEMA,
        "short": args.short,
        "config": {
            "jobs": args.jobs,
            "workers": args.workers,
            "capacity": args.capacity,
            "crash_rate": args.crash_rate,
            "seed": args.seed,
        },
        "load": load,
        "drain": drain,
    }
    Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")

    failures = load["errors"] + drain["errors"]
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            "OK: zero lost, zero duplicated, shedding fully accounted, "
            "drain contract holds"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
