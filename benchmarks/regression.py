"""Kernel and STA performance-regression gate.

``kernels.py`` and ``sta.py`` produce trajectories of
``BENCH_kernels.json``/``BENCH_sta.json`` artifacts; this module turns
the trajectory into a *gate*: a committed baseline
(``benchmarks/BENCH_baseline.json``, one merged report covering both
suites) plus a checker that compares a fresh run against it and exits
nonzero when a section got slower than the tolerance allows.  CI's
bench-regression job runs it on every change, so a perf regression
fails the build instead of being discovered three PRs later in the
archived JSON.

Raw wall times are not comparable across machines, so the baseline
embeds a **calibration** measurement — a fixed pure-Python workload
timed on the machine that wrote the baseline.  At check time the same
workload is timed again and every baseline figure is scaled by the
ratio, which cancels the machine-speed difference to first order
(CI runners vs laptops differ by 2-3x; kernel regressions we care
about are relative to *this* codebase on *this* machine).

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/regression.py              # gate
    PYTHONPATH=src python benchmarks/regression.py --rebaseline # reset
    PYTHONPATH=src python benchmarks/regression.py \
        --current BENCH_kernels.json                            # reuse a run

Gate rules (see ``docs/PERFORMANCE.md``):

* a section's normalized slowdown beyond ``--tolerance`` (default 25%,
  per-section overrides in the baseline's ``"tolerances"``) fails;
* sections faster than ``--min-seconds`` are reported but never fail
  (sub-millisecond timings are scheduler noise);
* the scalar/vector sections must keep ``speedup >= --min-speedup``
  (default 1.0): the vectorized path must never lose to the scalar
  reference path, regardless of machine.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BASELINE_SCHEMA = "repro-bench-baseline/1"
DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_baseline.json"
DEFAULT_TOLERANCE = 0.25
DEFAULT_MIN_SECONDS = 0.005
DEFAULT_MIN_SPEEDUP = 1.0

#: Calibration bounds: a machine-speed ratio outside this window means
#: the workload measured something other than CPU speed (a loaded CI
#: box mid-thermal-throttle); clamp so one bad calibration cannot wave
#: a real regression through or fail a healthy run.
_SCALE_BOUNDS = (0.2, 5.0)


def calibrate(repeats: int = 5) -> float:
    """Fixed pure-Python workload timing [s]: the machine-speed probe.

    Mixes float arithmetic, integer ops, and list traffic in rough
    proportion to what the kernels do; deterministic, allocation-light,
    and long enough (~10-50 ms) to dominate timer granularity.
    """
    def workload() -> float:
        acc = 0.0
        values = [0.0] * 256
        for i in range(120_000):
            j = i & 255
            values[j] = acc = acc * 0.9999 + (i ^ j) * 1e-6
        return acc + sum(values)

    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - t0)
    return best


def extract_metrics(report: dict) -> dict[str, float]:
    """Flatten a ``BENCH_kernels.json`` report into gateable timings.

    Single-kernel sections contribute ``<name>``; kernel pairs
    contribute the fastest-path figure — ``<name>.batch`` when the
    section ran the trajectory-batched kernel, else ``<name>.vector``
    — because the default path is what users pay for; the reference
    path is covered by the speedup floor.
    """
    metrics: dict[str, float] = {}
    for name, entry in (report.get("results") or {}).items():
        if "seconds" in entry:
            metrics[name] = entry["seconds"]
        elif "batch_seconds" in entry:
            metrics[f"{name}.batch"] = entry["batch_seconds"]
        elif "vector_seconds" in entry:
            metrics[f"{name}.vector"] = entry["vector_seconds"]
    return metrics


def extract_speedups(report: dict) -> dict[str, float]:
    return {
        name: entry["speedup"]
        for name, entry in (report.get("results") or {}).items()
        if "speedup" in entry
    }


def check(
    baseline: dict,
    current_report: dict,
    *,
    current_calibration: float,
    tolerance: float = DEFAULT_TOLERANCE,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
) -> tuple[list[dict], int]:
    """Compare a fresh report against the baseline.

    Returns ``(findings, failures)``.  Each finding is one row of the
    report table: metric, baseline seconds (already scaled to this
    machine), current seconds, slowdown fraction, and status — ``ok``,
    ``noise`` (below the timing floor), ``new`` (no baseline figure),
    or ``regression``.  Speedup-floor violations are extra findings
    with status ``speedup-regression``.
    """
    base_report = baseline.get("report") or {}
    base_cal = baseline.get("calibration_seconds") or current_calibration
    scale = current_calibration / base_cal if base_cal > 0 else 1.0
    scale = min(max(scale, _SCALE_BOUNDS[0]), _SCALE_BOUNDS[1])
    overrides = baseline.get("tolerances") or {}

    base_metrics = extract_metrics(base_report)
    cur_metrics = extract_metrics(current_report)
    findings: list[dict] = []
    failures = 0
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        base_s = base_metrics.get(name)
        cur_s = cur_metrics.get(name)
        if base_s is None or cur_s is None:
            findings.append(
                {"metric": name, "base_s": base_s, "cur_s": cur_s,
                 "slowdown": None, "status": "new" if base_s is None else "gone"}
            )
            continue
        scaled = base_s * scale
        slowdown = cur_s / scaled - 1.0 if scaled > 0 else 0.0
        allowed = overrides.get(name, tolerance)
        if max(scaled, cur_s) < min_seconds:
            status = "noise"
        elif slowdown > allowed:
            status = "regression"
            failures += 1
        else:
            status = "ok"
        findings.append(
            {"metric": name, "base_s": scaled, "cur_s": cur_s,
             "slowdown": slowdown, "status": status}
        )

    for name, speedup in sorted(extract_speedups(current_report).items()):
        if speedup < min_speedup:
            failures += 1
            findings.append(
                {"metric": f"{name}.speedup", "base_s": min_speedup,
                 "cur_s": speedup, "slowdown": None,
                 "status": "speedup-regression"}
            )
    return findings, failures


def run_full_suite(repeats: int) -> dict:
    """One merged report across both benchmark suites.

    The kernel and STA runners keep their own artifacts and schemas;
    the gate compares the union of their sections, so a regression in
    either suite fails the same build.
    """
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from kernels import run_benchmarks as run_kernel_benchmarks
    from sta import run_benchmarks as run_sta_benchmarks

    report = run_kernel_benchmarks(repeats)
    sta_report = run_sta_benchmarks(repeats)
    report["results"].update(sta_report["results"])
    report["counters"].update(sta_report["counters"])
    report["default_engine"] = sta_report["default_engine"]
    return report


def make_baseline(report: dict, calibration: float, tolerances: dict | None = None) -> dict:
    return {
        "schema": BASELINE_SCHEMA,
        "calibration_seconds": calibration,
        "tolerances": tolerances or {},
        "report": report,
    }


def _render(findings: list[dict], scale: float) -> str:
    lines = [f"[gate] machine-speed scale vs baseline: {scale:.2f}x"]
    header = f"{'metric':26s} {'base[ms]':>10} {'cur[ms]':>10} {'slowdown':>9}  status"
    lines.append(header)
    lines.append("-" * len(header))
    for row in findings:
        base = f"{row['base_s'] * 1e3:10.2f}" if row["base_s"] is not None else "         -"
        cur = f"{row['cur_s'] * 1e3:10.2f}" if row["cur_s"] is not None else "         -"
        slow = f"{row['slowdown']:+9.1%}" if row["slowdown"] is not None else "        -"
        if row["status"] == "speedup-regression":
            base = f"{row['base_s']:10.2f}"
            cur = f"{row['cur_s']:10.2f}"
        lines.append(f"{row['metric']:26s} {base} {cur} {slow}  {row['status']}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="committed baseline JSON (default: %(default)s)")
    parser.add_argument("--current", default=None, metavar="BENCH.json",
                        help="reuse an existing benchmark report instead of "
                             "running the suites")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats for a fresh benchmark run")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--min-seconds", type=float, default=DEFAULT_MIN_SECONDS,
                        help="timings below this never fail (default 5 ms)")
    parser.add_argument("--min-speedup", type=float, default=DEFAULT_MIN_SPEEDUP,
                        help="vector/scalar speedup floor (default 1.0)")
    parser.add_argument("--rebaseline", action="store_true",
                        help="write the fresh run as the new baseline "
                             "instead of gating")
    parser.add_argument("-o", "--output", default=None, metavar="BENCH.json",
                        help="also write the fresh kernels report here")
    args = parser.parse_args(argv)

    if args.current:
        report = json.loads(Path(args.current).read_text())
    else:
        report = run_full_suite(args.repeats)
    if args.output:
        Path(args.output).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"[gate] wrote {args.output}")

    calibration = calibrate()
    print(f"[gate] calibration workload: {calibration * 1e3:.2f} ms")

    if args.rebaseline:
        # Per-section tolerance overrides are curated by hand; carry
        # them across rebaselines instead of resetting to defaults.
        tolerances = {}
        if Path(args.baseline).exists():
            try:
                tolerances = json.loads(
                    Path(args.baseline).read_text()
                ).get("tolerances") or {}
            except ValueError:
                pass
        baseline = make_baseline(report, calibration, tolerances)
        Path(args.baseline).write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print(f"[gate] wrote new baseline {args.baseline}")
        return 0

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"[gate] FAIL: no baseline at {baseline_path} "
              f"(run with --rebaseline to create one)", file=sys.stderr)
        return 2
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("schema") != BASELINE_SCHEMA:
        print(f"[gate] FAIL: unrecognized baseline schema "
              f"{baseline.get('schema')!r}", file=sys.stderr)
        return 2

    base_cal = baseline.get("calibration_seconds") or calibration
    scale = calibration / base_cal if base_cal > 0 else 1.0
    scale = min(max(scale, _SCALE_BOUNDS[0]), _SCALE_BOUNDS[1])
    findings, failures = check(
        baseline, report,
        current_calibration=calibration,
        tolerance=args.tolerance,
        min_seconds=args.min_seconds,
        min_speedup=args.min_speedup,
    )
    print(_render(findings, scale))
    if failures:
        print(f"[gate] FAIL: {failures} regression(s) beyond tolerance",
              file=sys.stderr)
        return 1
    print("[gate] PASS: no kernel regression beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
