"""Ablation: where does leakage stop mattering on the way down to 10 K?

The paper contrasts the endpoints (300 K vs 10 K).  This sweep
characterizes the library and signs off a circuit at intermediate
cryogenic corners, locating the temperature below which the leakage
share becomes negligible and the conventional leakage-aware synthesis
objective loses its justification.
"""

from repro.benchgen import build_circuit
from repro.charlib import characterize_library
from repro.mapping import map_to_gates
from repro.pdk import cryo5_technology
from repro.sta import analyze_power, critical_delay
from repro.synth import compress2rs

TEMPERATURES = (300.0, 200.0, 77.0, 40.0, 10.0)


def _run():
    tech = cryo5_technology()
    aig = compress2rs(build_circuit("i2c", "small"))
    rows = []
    for temperature in TEMPERATURES:
        library = characterize_library(tech, temperature)
        net = map_to_gates(aig, library)
        delay = critical_delay(net, library)
        report = analyze_power(net, library, clock_period=1e-9, vectors=256)
        rows.append(
            {
                "temperature": temperature,
                "delay": delay,
                "leakage_share": report.leakage_share,
                "total": report.total,
            }
        )
    return rows


def test_ablation_temperature_sweep(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nAblation: temperature ladder (i2c @ 1 GHz)")
    print(f"{'T [K]':>7} {'delay [ps]':>11} {'leakage share':>14} {'total [uW]':>11}")
    for row in rows:
        print(
            f"{row['temperature']:7.0f} {row['delay'] * 1e12:11.2f}"
            f" {row['leakage_share']:14.6%} {row['total'] * 1e6:11.3f}"
        )

    by_t = {row["temperature"]: row for row in rows}
    # Leakage share decreases monotonically with temperature.
    shares = [by_t[t]["leakage_share"] for t in TEMPERATURES]
    assert all(b <= a * 1.05 + 1e-12 for a, b in zip(shares, shares[1:]))
    # It is visible at 300 K and negligible at and below 77 K
    # (the paper's premise: below ~100 K the objective changes).
    assert by_t[300.0]["leakage_share"] > 0.005
    assert by_t[77.0]["leakage_share"] < 1e-4
    assert by_t[10.0]["leakage_share"] < 1e-5
    # Delay stays within a narrow band over the whole ladder.
    delays = [row["delay"] for row in rows]
    assert max(delays) / min(delays) < 1.25
