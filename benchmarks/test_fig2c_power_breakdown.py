"""Figure 2 (c): leakage / internal / switching power shares.

Synthesizes EPFL circuits, maps them against the 300 K and 10 K
libraries, and runs signoff power analysis.  The paper's headline:
leakage contributes noticeably at room temperature but becomes
*negligible* at 10 K (0.003 % in the paper) because the transistor OFF
current collapses by orders of magnitude.
"""

from repro.core import average_shares, figure2c_power_breakdown

CIRCUITS = ["ctrl", "i2c", "int2float", "dec", "cavlc", "router"]


def _run():
    return figure2c_power_breakdown(circuits=CIRCUITS, preset="small", vectors=256)


def test_fig2c_power_breakdown(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nFig. 2(c) reproduction: power decomposition per circuit")
    print(f"{'circuit':>10} {'T [K]':>7} {'leakage%':>10} {'internal%':>10} {'switching%':>11}")
    for row in sorted(rows, key=lambda r: (r.circuit, -r.temperature)):
        print(
            f"{row.circuit:>10} {row.temperature:7.0f}"
            f" {row.leakage_share * 100:10.4f}"
            f" {row.internal_share * 100:10.2f}"
            f" {row.switching_share * 100:11.2f}"
        )

    leak300, int300, sw300 = average_shares(rows, 300.0)
    leak10, int10, sw10 = average_shares(rows, 10.0)
    print("\naverage shares:")
    print(f"  300 K: leakage {leak300:8.4%}  internal {int300:6.1%}  switching {sw300:6.1%}")
    print(f"   10 K: leakage {leak10:8.4%}  internal {int10:6.1%}  switching {sw10:6.1%}")

    # Shape: leakage contributes a substantial share at room
    # temperature (paper: ~15 %; we measure in the same band)...
    assert 0.05 < leak300 < 0.35, "300 K leakage share should be ~15%"
    # ...and becomes negligible at 10 K (paper: 0.003 %).
    assert leak10 < 1e-4, "10 K leakage share must be negligible"
    assert leak10 < leak300 / 100.0
    # Dynamic power fills the gap; shares sum to one per corner.
    assert abs(leak300 + int300 + sw300 - 1.0) < 1e-9
    assert abs(leak10 + int10 + sw10 - 1.0) < 1e-9
