"""Figure 2 (a, b): library-wide delay/energy distributions, 300 K vs 10 K.

Characterizes the full 200-cell library at both corners and summarizes
the distributions the paper plots:

* (a) propagation delay — the 300 K and 10 K distributions largely
  overlap (ON current is nearly temperature independent),
* (b) switching energy — slightly lower at 10 K (gate-capacitance
  shift from the cryogenic surface potential).
"""

import numpy as np

from repro.charlib import characterize_library
from repro.pdk import cryo5_technology


def _characterize_both():
    tech = cryo5_technology()
    return {t: characterize_library(tech, t) for t in (300.0, 10.0)}


def _summary(values: np.ndarray) -> dict[str, float]:
    return {
        "mean": float(np.mean(values)),
        "median": float(np.median(values)),
        "p10": float(np.percentile(values, 10)),
        "p90": float(np.percentile(values, 90)),
    }


def test_fig2ab_cell_distributions(benchmark):
    libraries = benchmark.pedantic(_characterize_both, rounds=1, iterations=1)

    assert all(len(lib) == 200 for lib in libraries.values())

    delay = {t: lib.delay_distribution() for t, lib in libraries.items()}
    energy = {t: lib.energy_distribution() for t, lib in libraries.items()}

    print("\nFig. 2(a) reproduction: cell propagation delay [ps]")
    print(f"{'T [K]':>7} {'mean':>8} {'median':>8} {'p10':>8} {'p90':>8}")
    for t in (300.0, 10.0):
        s = _summary(delay[t] * 1e12)
        print(f"{t:7.0f} {s['mean']:8.3f} {s['median']:8.3f} {s['p10']:8.3f} {s['p90']:8.3f}")

    print("\nFig. 2(b) reproduction: cell switching energy [fJ]")
    for t in (300.0, 10.0):
        s = _summary(energy[t] * 1e15)
        print(f"{t:7.0f} {s['mean']:8.4f} {s['median']:8.4f} {s['p10']:8.4f} {s['p90']:8.4f}")

    # (a) distributions largely overlap: medians within 5 %, and the
    # bulk of both distributions occupies the same range.
    median_ratio = np.median(delay[10.0]) / np.median(delay[300.0])
    print(f"\ndelay median ratio 10K/300K: {median_ratio:.4f}")
    assert 0.95 < median_ratio < 1.05

    overlap_low = max(np.percentile(delay[300.0], 10), np.percentile(delay[10.0], 10))
    overlap_high = min(np.percentile(delay[300.0], 90), np.percentile(delay[10.0], 90))
    assert overlap_high > overlap_low, "delay distributions must overlap"

    # (b) energy slightly lower at 10 K — lower, but by less than 15 %.
    energy_ratio = np.median(energy[10.0]) / np.median(energy[300.0])
    print(f"energy median ratio 10K/300K: {energy_ratio:.4f}")
    assert 0.85 < energy_ratio < 1.0

    # Sanity on the library-level leakage trend that drives Fig. 2(c).
    leak300 = float(np.mean(libraries[300.0].leakage_distribution()))
    leak10 = float(np.mean(libraries[10.0].leakage_distribution()))
    print(f"mean cell leakage: {leak300 * 1e9:.2f} nW @300K -> {leak10 * 1e9:.3e} nW @10K")
    assert leak10 < 1e-4 * leak300
