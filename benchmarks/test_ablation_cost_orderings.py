"""Ablation: all six orderings of {power, area, delay} in the mapper.

The paper proposes two specific hierarchies (p->a->d, p->d->a).  This
ablation maps the same optimized networks under *every* permutation of
the three cost metrics, quantifying how much of the benefit comes from
making power primary versus the secondary/tertiary order.
"""

import numpy as np

from repro.benchgen import build_suite
from repro.charlib import default_library
from repro.mapping import TechLibraryView, TechnologyMapper, all_orderings
from repro.sta import analyze_power, critical_delay
from repro.synth import compress2rs

CIRCUITS = ["ctrl", "dec", "int2float", "priority", "cavlc"]


def _run():
    library = default_library(10.0)
    view = TechLibraryView(library)
    suite = build_suite("small", names=CIRCUITS)
    optimized = {name: compress2rs(aig) for name, aig in suite.items()}

    table: dict[str, dict[str, float]] = {}
    for policy in all_orderings():
        nets = {
            name: TechnologyMapper(view, policy).map(aig)
            for name, aig in optimized.items()
        }
        delays = {n: critical_delay(net, library) for n, net in nets.items()}
        powers = {}
        for name, net in nets.items():
            clock = delays[name] * 1.5
            powers[name] = analyze_power(net, library, clock, vectors=256).total
        table[policy.name] = {
            "power": float(np.mean(list(powers.values()))),
            "delay": float(np.mean(list(delays.values()))),
            "area": float(np.mean([net.total_area(library) for net in nets.values()])),
        }
    return table


def test_ablation_cost_orderings(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nAblation: mapper cost orderings (averages over circuits)")
    print(f"{'ordering':>10} {'power [uW]':>11} {'delay [ps]':>11} {'area [um2]':>11}")
    for name, row in sorted(table.items(), key=lambda kv: kv[1]["power"]):
        print(
            f"{name:>10} {row['power'] * 1e6:11.3f} {row['delay'] * 1e12:11.2f}"
            f" {row['area']:11.3f}"
        )

    assert len(table) == 6
    # Power-primary orderings must, on average, dissipate no more than
    # the worst non-power-primary ordering.
    power_first = [row["power"] for name, row in table.items() if name.startswith("p")]
    others = [row["power"] for name, row in table.items() if not name.startswith("p")]
    assert min(power_first) <= max(others)
    # Delay-primary orderings deliver the fastest circuits.
    delay_first = [row["delay"] for name, row in table.items() if name.startswith("d")]
    assert min(delay_first) <= min(row["delay"] for row in table.values()) * 1.05
