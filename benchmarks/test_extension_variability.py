"""Extension study: process variability at 300 K vs 10 K.

The paper's measurement section notes the thermal instability of the
cryogenic probe (3.5-8.5 K fluctuations) and the literature it builds
on identifies band-tail spread as the dominant device-variation
channel at deep-cryogenic temperature.  This Monte-Carlo study
quantifies what that means at the cell level: delay spread stays
comparable between corners (ON-current physics), while leakage spread
is enormous at 300 K (exponential in V_th) and collapses to the floor
at 10 K.
"""

from repro.device import default_nfet_5nm
from repro.device.montecarlo import mc_cell_delay, mc_cell_leakage, mc_device_metric
from repro.pdk.catalog import make_nand

N_SAMPLES = 32


def _run():
    rows = {}
    for temperature in (300.0, 10.0):
        delay = mc_cell_delay(make_nand(2, 1), temperature, n_samples=N_SAMPLES)
        leakage = mc_cell_leakage(make_nand(2, 1), temperature, n_samples=N_SAMPLES)
        ion = mc_device_metric(
            lambda d, t: d.on_current(0.7, t), default_nfet_5nm(), temperature,
            n_samples=N_SAMPLES,
        )
        ioff = mc_device_metric(
            lambda d, t: d.off_current(0.7, t), default_nfet_5nm(), temperature,
            n_samples=N_SAMPLES,
        )
        rows[temperature] = {
            "delay": delay,
            "leakage": leakage,
            "ion": ion,
            "ioff": ioff,
        }
    return rows


def test_extension_variability(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nExtension: Monte-Carlo variability (sigma/mu), NAND2x1 + n-FinFET")
    print(f"{'metric':>12} {'300 K':>10} {'10 K':>10}")
    for metric in ("delay", "leakage", "ion", "ioff"):
        print(
            f"{metric:>12} {rows[300.0][metric].sigma_over_mu:10.4f}"
            f" {rows[10.0][metric].sigma_over_mu:10.4f}"
        )

    # Delay variability comparable between corners (ON current rules).
    d300 = rows[300.0]["delay"].sigma_over_mu
    d10 = rows[10.0]["delay"].sigma_over_mu
    assert 0.3 < d10 / max(d300, 1e-9) < 3.0

    # Leakage variability is exponential at 300 K...
    assert rows[300.0]["leakage"].sigma_over_mu > 3.0 * d300
    # ...and floor-limited at 10 K (the floor does not vary with Vth).
    assert rows[10.0]["ioff"].sigma_over_mu < rows[300.0]["ioff"].sigma_over_mu

    # Mean leakage collapse survives variation.
    assert rows[10.0]["leakage"].mean < 1e-4 * rows[300.0]["leakage"].mean
