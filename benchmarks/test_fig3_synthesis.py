"""Figure 3 (a, b): cryogenic-aware synthesis vs power-aware baseline.

The paper's headline experiment: the three-stage pipeline (c2rs;
dch -p; if -p; mfs; strash; map -p) with the two proposed cost
hierarchies (power->area->delay and power->delay->area) against ABC's
best out-of-the-box power-aware flow, signed off at a common clock
(the slowest variant per circuit — footnote 1).

Reproduction contract (shape, not absolute numbers):
* both proposed policies save power on the majority of circuits,
* the average saving is positive (paper: 6.47 % / 5.74 %),
* some circuits regress (heuristics; the paper sees this too),
* average delay overhead stays near or below zero.
"""

import pytest

from repro.core import figure3_summary, figure3_synthesis_comparison

from conftest import FAST_CIRCUITS, FULL


def _run():
    circuits = None if FULL else FAST_CIRCUITS
    return figure3_synthesis_comparison(circuits=circuits, preset="default", vectors=256)


def test_fig3_synthesis_comparison(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nFig. 3 reproduction: power saving / delay overhead vs baseline")
    header = (
        f"{'circuit':12s} {'base P[uW]':>11} {'base D[ps]':>11}"
        f" {'p_a_d dP%':>10} {'p_a_d dD%':>10} {'p_d_a dP%':>10} {'p_d_a dD%':>10}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row.circuit:12s} {row.baseline_power * 1e6:11.2f}"
            f" {row.baseline_delay * 1e12:11.1f}"
            f" {row.power_saving('p_a_d'):+10.2f} {row.delay_overhead('p_a_d'):+10.2f}"
            f" {row.power_saving('p_d_a'):+10.2f} {row.delay_overhead('p_d_a'):+10.2f}"
        )

    summary = figure3_summary(rows)
    print("\nsummary:")
    for scenario, stats in summary.items():
        print(
            f"  {scenario}: avg dP {stats['avg_power_saving']:+.2f}%"
            f" max {stats['max_power_saving']:+.2f}%"
            f" min {stats['min_power_saving']:+.2f}%"
            f" improved {stats['circuits_improved']}/{len(rows)}"
            f" avg dD {stats['avg_delay_overhead']:+.2f}%"
        )

    for scenario in ("p_a_d", "p_d_a"):
        stats = summary[scenario]
        # (a) average power saving positive; majority of circuits improve
        # or at worst break even.
        assert stats["avg_power_saving"] > 0.0, (
            f"{scenario}: cryogenic-aware flow must save power on average"
        )
        non_regressing = sum(
            1 for row in rows if row.power_saving(scenario) > -0.5
        )
        assert non_regressing >= len(rows) * 0.6
        # Savings land in the paper's single-digit-to-tens-of-percent band.
        assert stats["max_power_saving"] < 60.0
        # (b) average delay overhead near or below zero (paper: -6.2 %
        # and -1.7 %); allow a small positive margin for the subset.
        assert stats["avg_delay_overhead"] < 5.0


@pytest.mark.skipif(FULL, reason="covered by the full-suite run")
def test_fig3_negative_savings_are_possible():
    """The paper observes overheads on some instances — our harness
    must be able to report them (no clamping in the metric)."""
    from repro.core.experiments import Figure3Row

    row = Figure3Row(
        circuit="x", baseline_power=1.0, baseline_delay=1.0,
        power={"p_a_d": 1.1}, delay={"p_a_d": 2.14},
    )
    assert row.power_saving("p_a_d") == pytest.approx(-10.0)
    assert row.delay_overhead("p_a_d") == pytest.approx(114.0)
