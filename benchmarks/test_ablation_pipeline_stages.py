"""Ablation: contribution of each pipeline stage to the final result.

The paper's flow is (1) c2rs, (2) dch/if/mfs/strash, (3) map.  This
ablation disables stages selectively and measures the mapped power and
delay, quantifying what the technology-independent compression and the
power-aware restructuring each buy before the cryogenic-aware mapper
runs.
"""

import numpy as np

from repro.benchgen import build_suite
from repro.charlib import default_library
from repro.mapping import TechLibraryView, TechnologyMapper, p_d_a
from repro.sta import analyze_power, critical_delay
from repro.synth import compress2rs, power_aware_restructure

CIRCUITS = ["ctrl", "int2float", "cavlc", "i2c"]

VARIANTS = ("map_only", "c2rs_map", "full")


def _run():
    library = default_library(10.0)
    view = TechLibraryView(library)
    suite = build_suite("small", names=CIRCUITS)

    # Map every variant first; power is signed off at a clock common
    # to all variants of the same circuit (the paper's fairness rule —
    # otherwise faster variants get charged for their higher clock).
    nets: dict[str, dict[str, object]] = {v: {} for v in VARIANTS}
    delays: dict[str, dict[str, float]] = {v: {} for v in VARIANTS}
    for name, aig in suite.items():
        stage1 = compress2rs(aig)
        optimized = {
            "map_only": aig,
            "c2rs_map": stage1,
            "full": power_aware_restructure(stage1, power_mode="primary"),
        }
        for variant in VARIANTS:
            net = TechnologyMapper(view, p_d_a()).map(optimized[variant])
            nets[variant][name] = net
            delays[variant][name] = critical_delay(net, library)

    table: dict[str, dict[str, float]] = {}
    for variant in VARIANTS:
        powers, gates = [], []
        for name in suite:
            clock = max(delays[v][name] for v in VARIANTS) * 1.5
            powers.append(
                analyze_power(nets[variant][name], library, clock, vectors=256).total
            )
            gates.append(nets[variant][name].num_gates)
        table[variant] = {
            "power": float(np.mean(powers)),
            "delay": float(np.mean(list(delays[variant].values()))),
            "gates": float(np.mean(gates)),
        }
    return table


def test_ablation_pipeline_stages(benchmark):
    table = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\nAblation: pipeline stages (p->d->a mapping, averages)")
    print(f"{'variant':>10} {'gates':>7} {'power [uW]':>11} {'delay [ps]':>11}")
    for variant in VARIANTS:
        row = table[variant]
        print(
            f"{variant:>10} {row['gates']:7.1f} {row['power'] * 1e6:11.3f}"
            f" {row['delay'] * 1e12:11.2f}"
        )

    # Stage-1 compression must reduce gate count vs raw mapping.
    assert table["c2rs_map"]["gates"] <= table["map_only"]["gates"]
    # The optimized flows must not burn more power than raw mapping.
    assert table["c2rs_map"]["power"] <= table["map_only"]["power"] * 1.05
    assert table["full"]["power"] <= table["map_only"]["power"] * 1.05
