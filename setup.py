"""Legacy setup shim: enables `python setup.py develop` / editable
installs on environments whose pip/setuptools lack PEP 660 support
(this offline container has no `wheel` package)."""

from setuptools import setup

setup()
